"""Fig. 9: space utilization of 8PS and HPS, normalized to 4PS.

Paper headlines: HPS always achieves the same space utilization as 4PS
(no padding is ever written); against 8PS its best gain is 24.2 % (Music)
and the average gain is 13.1 %.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis import render_table
from repro.workloads import DEFAULT_SEED, FIG9_HPS_VS_8PS, INDIVIDUAL_APPS

from repro.emmc import eight_ps, four_ps, hps

from .common import ExperimentResult, individual_traces, replay_on


def run(
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
    apps: Optional[List[str]] = None,
) -> ExperimentResult:
    """Measure space utilization per scheme; normalize to 4PS."""
    selected = list(apps) if apps is not None else list(INDIVIDUAL_APPS)
    configs = {"4PS": four_ps(), "8PS": eight_ps(), "HPS": hps()}
    traces = [
        trace
        for trace in individual_traces(seed=seed, num_requests=num_requests)
        if trace.name in selected
    ]
    utilization: Dict[str, Dict[str, float]] = {}
    rows = []
    gains = []
    for trace in traces:
        per_scheme = {
            scheme: replay_on(config, trace).stats.space_utilization
            for scheme, config in configs.items()
        }
        utilization[trace.name] = per_scheme
        gain = per_scheme["HPS"] / per_scheme["8PS"] - 1.0 if per_scheme["8PS"] else 0.0
        gains.append(gain)
        rows.append(
            [
                trace.name,
                per_scheme["8PS"] / per_scheme["4PS"],
                per_scheme["HPS"] / per_scheme["4PS"],
                f"{gain * 100:.1f}%",
            ]
        )
    average = sum(gains) / len(gains) if gains else 0.0
    footer = (
        f"HPS vs 8PS: best {max(gains) * 100:.1f}%, average {average * 100:.1f}%  "
        f"(paper: best {FIG9_HPS_VS_8PS['best'][1] * 100:.1f}% on "
        f"{FIG9_HPS_VS_8PS['best'][0]}, average {FIG9_HPS_VS_8PS['average'] * 100:.1f}%)"
    ) if gains else ""
    table = render_table(
        ["App", "8PS / 4PS", "HPS / 4PS", "HPS vs 8PS"], rows
    )
    return ExperimentResult(
        experiment_id="fig9",
        title="Space utilization normalized to 4PS",
        table=table + "\n" + footer,
        data={"utilization": utilization, "gains": dict(zip((t.name for t in traces), gains))},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
