"""Content-addressed on-disk cache for experiment results.

Cache key
---------
An entry is addressed by the SHA-256 of a canonical JSON document::

    {
      "experiment_id": ...,
      "params": {"seed": ..., "num_requests": ..., ...},   # spec-filtered
      "code_fingerprint": sha256(source of the experiment module
                                 + source of experiments.common),
      "version": repro.__version__,
      "format": CACHE_FORMAT,
    }

``params`` comes from :meth:`ExperimentSpec.cache_relevant_params`, so a
seed change never invalidates a seed-independent experiment, while any
change to the experiment's own code, the shared helpers, the package
version or the on-disk format changes the key and naturally invalidates
stale entries (content addressing: old entries are simply never looked up
again).

Storage
-------
One pickle per entry under ``<cache_dir>/results/<key>.pkl`` --
``ExperimentResult.data`` holds arbitrary dataclasses, so pickle (not
JSON) is the fidelity-preserving format.  Writes go through a same-
directory temp file + ``os.replace`` so a crashed run can never leave a
half-written entry behind; a corrupt or unreadable entry is treated as a
miss, deleted, and recomputed (counted in ``stats.invalidated``).

The default location is ``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import pickle
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from repro import __version__

from . import common
from .common import ExperimentResult
from .spec import ExperimentSpec

#: Bump when the on-disk entry layout changes; invalidates every entry.
CACHE_FORMAT = 1

#: Environment variable overriding the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Resolve the cache directory from the environment."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    """Hit/miss/invalidation accounting for one runner invocation."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0  # corrupt/mismatched entries removed
    errors: int = 0  # I/O failures (cache degraded, run continued)
    hit_ids: list = field(default_factory=list)
    miss_ids: list = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidated": self.invalidated,
            "errors": self.errors,
            "hit_ids": list(self.hit_ids),
            "miss_ids": list(self.miss_ids),
        }

    def summary(self) -> str:
        total = self.hits + self.misses
        return (
            f"cache: {self.hits}/{total} hits, {self.misses} misses, "
            f"{self.stores} stores, {self.invalidated} invalidated, "
            f"{self.errors} errors"
        )


def _module_source(module_name: str) -> str:
    module = sys.modules.get(module_name)
    if module is None:  # pragma: no cover - registry imports guarantee this
        __import__(module_name)
        module = sys.modules[module_name]
    try:
        return inspect.getsource(module)
    except (OSError, TypeError):  # pragma: no cover - frozen/zipped installs
        return module_name


def code_fingerprint(spec: ExperimentSpec) -> str:
    """SHA-256 over the experiment's own code plus the shared helpers.

    Editing an experiment module (or :mod:`repro.experiments.common`,
    which every experiment funnels through) changes the fingerprint and
    therefore the cache key -- the "config hash" leg of invalidation.
    """
    digest = hashlib.sha256()
    digest.update(_module_source(spec.runner.__module__).encode("utf-8"))
    digest.update(_module_source(common.__name__).encode("utf-8"))
    return digest.hexdigest()


def cache_key(
    spec: ExperimentSpec, seed: int, num_requests: Optional[int]
) -> str:
    """The content address for one (experiment, parameters) result."""
    document = {
        "experiment_id": spec.experiment_id,
        "params": spec.cache_relevant_params(seed, num_requests),
        "code_fingerprint": code_fingerprint(spec),
        "version": __version__,
        "format": CACHE_FORMAT,
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Pickle-per-entry result store with graceful degradation.

    Every method is best-effort: cache trouble (unreadable directory,
    corrupt entry, full disk) downgrades to a recompute, never an
    exception escaping to the runner.
    """

    def __init__(self, cache_dir: Optional[Path] = None, enabled: bool = True):
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.enabled = enabled
        self.stats = CacheStats()

    @property
    def results_dir(self) -> Path:
        return self.cache_dir / "results"

    def _path_for(self, key: str) -> Path:
        return self.results_dir / f"{key}.pkl"

    def load(
        self, spec: ExperimentSpec, seed: int, num_requests: Optional[int]
    ) -> Optional[ExperimentResult]:
        """The cached result, or ``None`` on any kind of miss."""
        if not self.enabled:
            return None
        key = cache_key(spec, seed, num_requests)
        path = self._path_for(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            self.stats.miss_ids.append(spec.experiment_id)
            return None
        except OSError:
            self.stats.errors += 1
            return None
        try:
            entry = pickle.loads(raw)
            if entry["key"] != key or entry["format"] != CACHE_FORMAT:
                raise ValueError("cache entry does not match its address")
            result = entry["result"]
            if not isinstance(result, ExperimentResult):
                raise ValueError("cache entry payload has the wrong type")
        except Exception:
            # Corrupt/stale entry: remove it and fall back to a recompute.
            self.stats.invalidated += 1
            self.stats.misses += 1
            self.stats.miss_ids.append(spec.experiment_id)
            try:
                path.unlink()
            except OSError:
                self.stats.errors += 1
            return None
        self.stats.hits += 1
        self.stats.hit_ids.append(spec.experiment_id)
        return result

    def store(
        self,
        spec: ExperimentSpec,
        seed: int,
        num_requests: Optional[int],
        result: ExperimentResult,
    ) -> None:
        """Persist ``result`` atomically; failures only dent the stats."""
        if not self.enabled:
            return
        key = cache_key(spec, seed, num_requests)
        entry = {"key": key, "format": CACHE_FORMAT, "result": result}
        try:
            self.results_dir.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                dir=self.results_dir, prefix=f".{key}.", delete=False
            )
            try:
                with handle:
                    pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(handle.name, self._path_for(key))
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
        except Exception:
            self.stats.errors += 1
            return
        self.stats.stores += 1


class NullCache(ResultCache):
    """A disabled cache (``--no-cache``): every lookup misses silently."""

    def __init__(self) -> None:
        super().__init__(cache_dir=Path(os.devnull), enabled=False)
