"""Table IV: timing-related statistics of the 25 traces.

Traces are replayed on the reference (4PS) simulated eMMC device to obtain
the device-dependent columns (no-wait ratio, mean service/response time);
the trace-intrinsic columns (rates, localities) come from the traces
themselves.

The experiment shards into one unit per trace: each worker runs its
closed-loop collection, resolves the ``timing_stats`` metric from the
registry (:mod:`repro.metrics.registry`) and folds the replayed trace
chunk by chunk through the metric's out-of-core engine (O(1) float
state), shipping the state back instead of the replayed requests.
``merge`` finalizes in paper order; the registry contract guarantees the
fold is bit-identical to the batch kernel, so sharded output matches the
serial path byte for byte.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis import render_table
from repro.metrics import chunked, get_metric
from repro.metrics.timing import TimingStats, TimingStatsState
from repro.workloads import ALL_TRACES, DEFAULT_SEED, TABLE_IV

from .common import ExperimentResult, cached_collection
from .spec import ExperimentSpec, ShardPlan

#: Rows folded per streaming step inside a shard worker.
SHARD_CHUNK_ROWS = 16384

#: The one metric this experiment reports.
METRIC_NAME = "timing_stats"


def _row(stats: TimingStats) -> list:
    """One rendered Table IV row: measured (paper)."""
    paper = TABLE_IV[stats.name]
    return [
        stats.name,
        f"{stats.duration_s:,.0f} ({paper.duration_s:,})",
        f"{stats.arrival_rate:.2f} ({paper.arrival_rate})",
        f"{stats.access_rate_kib_s:,.1f} ({paper.access_rate_kib_s:,})",
        f"{stats.nowait_pct:.0f} ({paper.nowait_pct})",
        f"{stats.mean_service_ms:.2f} ({paper.mean_service_ms})",
        f"{stats.mean_response_ms:.2f} ({paper.mean_response_ms})",
        f"{stats.spatial_locality_pct:.1f} ({paper.spatial_locality_pct})",
        f"{stats.temporal_locality_pct:.1f} ({paper.temporal_locality_pct})",
    ]


def compute_shard(
    unit: str, seed: int = DEFAULT_SEED, num_requests: Optional[int] = None
) -> TimingStatsState:
    """One trace's closed-loop replay, reduced to its streaming state.

    The collapsed (O(1) float state) form suffices here: a worker folds
    its own trace sequentially, so nothing merges onto its left.
    """
    replay = cached_collection(unit, seed=seed, num_requests=num_requests)
    metric = get_metric(METRIC_NAME)
    state = metric.init(collapse=True)
    for chunk in chunked(replay.trace.columns(), SHARD_CHUNK_ROWS):
        metric.update(state, chunk)
    return state


def merge(
    payloads: Dict[str, object],
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
) -> ExperimentResult:
    """Finalize the per-trace summaries into Table IV (paper order)."""
    del seed, num_requests  # assembly is a pure function of the payloads
    metric = get_metric(METRIC_NAME)
    rows = []
    measured = {}
    for name in ALL_TRACES:
        stats = metric.finalize(payloads[name], name)
        measured[name] = stats
        rows.append(_row(stats))
    table = render_table(
        [
            "App",
            "Duration s",
            "Arr req/s",
            "Access KB/s",
            "NoWait %",
            "Serv ms",
            "Resp ms",
            "SpatLoc %",
            "TempLoc %",
        ],
        rows,
    )
    return ExperimentResult(
        experiment_id="table4",
        title="Timing-related statistics, measured (paper)",
        table=table,
        data={"measured": measured},
    )


def run(seed: int = DEFAULT_SEED, num_requests: Optional[int] = None) -> ExperimentResult:
    """Regenerate Table IV; every cell shown as measured (paper)."""
    payloads = {
        name: compute_shard(name, seed=seed, num_requests=num_requests)
        for name in ALL_TRACES
    }
    return merge(payloads, seed=seed, num_requests=num_requests)


SPEC = ExperimentSpec(
    experiment_id="table4",
    title="Table IV timing-related statistics of the 25 traces",
    runner=run,
    cost="heavy",
    shards=ShardPlan(units=tuple(ALL_TRACES), worker=compute_shard, merge=merge),
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
