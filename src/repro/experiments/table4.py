"""Table IV: timing-related statistics of the 25 traces.

Traces are replayed on the reference (4PS) simulated eMMC device to obtain
the device-dependent columns (no-wait ratio, mean service/response time);
the trace-intrinsic columns (rates, localities) come from the traces
themselves.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis import render_table, timing_stats
from repro.workloads import DEFAULT_SEED, TABLE_IV

from .common import ExperimentResult, replayed_all
from .spec import ExperimentSpec


def run(seed: int = DEFAULT_SEED, num_requests: Optional[int] = None) -> ExperimentResult:
    """Regenerate Table IV; every cell shown as measured (paper)."""
    rows = []
    measured = {}
    for replay in replayed_all(seed=seed, num_requests=num_requests):
        stats = timing_stats(replay.trace)
        paper = TABLE_IV[replay.trace.name]
        measured[replay.trace.name] = stats
        rows.append(
            [
                stats.name,
                f"{stats.duration_s:,.0f} ({paper.duration_s:,})",
                f"{stats.arrival_rate:.2f} ({paper.arrival_rate})",
                f"{stats.access_rate_kib_s:,.1f} ({paper.access_rate_kib_s:,})",
                f"{stats.nowait_pct:.0f} ({paper.nowait_pct})",
                f"{stats.mean_service_ms:.2f} ({paper.mean_service_ms})",
                f"{stats.mean_response_ms:.2f} ({paper.mean_response_ms})",
                f"{stats.spatial_locality_pct:.1f} ({paper.spatial_locality_pct})",
                f"{stats.temporal_locality_pct:.1f} ({paper.temporal_locality_pct})",
            ]
        )
    table = render_table(
        [
            "App",
            "Duration s",
            "Arr req/s",
            "Access KB/s",
            "NoWait %",
            "Serv ms",
            "Resp ms",
            "SpatLoc %",
            "TempLoc %",
        ],
        rows,
    )
    return ExperimentResult(
        experiment_id="table4",
        title="Timing-related statistics, measured (paper)",
        table=table,
        data={"measured": measured},
    )


SPEC = ExperimentSpec(
    experiment_id="table4",
    title="Table IV timing-related statistics of the 25 traces",
    runner=run,
    cost="heavy",
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
