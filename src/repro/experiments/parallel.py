"""Parallel, cached execution of the experiment registry.

The engine shards work at two granularities:

* **whole experiments** -- every selected experiment with no
  :class:`~repro.experiments.spec.ShardPlan` is one task;
* **per-trace shards** -- heavy replay studies (fig3/fig8/fig9) split into
  one task per independent unit (device sweep, or one app's replays), so
  a single heavy experiment no longer serializes the tail of the run.

Determinism
-----------
Parallel output is bit-identical to serial because nothing about the
computation depends on scheduling:

* every RNG stream is derived from ``hash(name, seed)`` inside the
  generators, never from global state (the pool still reseeds
  ``random``/``numpy`` per worker as defense in depth);
* shard payloads are merged by the spec's ``merge`` in one deterministic
  order in the parent, so float accumulation order never varies;
* results are emitted in selection (paper) order, not completion order.

Workers receive only ``(experiment_id, unit, seed, num_requests)`` and
re-resolve the spec from :mod:`repro.experiments.registry` after import,
so nothing non-picklable crosses the process boundary.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import registry
from .cache import CacheStats, NullCache, ResultCache
from .common import ExperimentResult
from .spec import COST_CLASSES, ExperimentSpec

#: One wall measurement from a task: (label, started_s, ended_s, pid).
#: Endpoints are ``time.perf_counter()`` seconds -- CLOCK_MONOTONIC on
#: Linux, system-wide, so worker-process endpoints are directly
#: comparable with the parent's run origin.
WallPoint = Tuple[str, float, float, int]


@dataclass
class ExperimentTelemetry:
    """Wall-time and cache accounting for one experiment."""

    experiment_id: str
    compute_s: float  # summed worker-side compute time (serial-equivalent)
    wall_s: float  # submit-to-merge span as seen by the scheduler
    cache: str  # "hit" | "miss" | "off"
    shards: int  # parallel shard count (0 = ran as one task)
    cost: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "experiment_id": self.experiment_id,
            "compute_s": round(self.compute_s, 6),
            "wall_s": round(self.wall_s, 6),
            "cache": self.cache,
            "shards": self.shards,
            "cost": self.cost,
        }


@dataclass
class RunSummary:
    """Everything one engine invocation produced."""

    results: List[ExperimentResult]
    telemetry: List[ExperimentTelemetry]
    wall_s: float
    jobs: int
    cache_stats: CacheStats = field(default_factory=CacheStats)

    @property
    def compute_s(self) -> float:
        """Serial-equivalent compute seconds actually spent this run."""
        return sum(item.compute_s for item in self.telemetry)

    @property
    def speedup(self) -> float:
        """Serial-equivalent seconds per wall second (1.0 = no benefit)."""
        return self.compute_s / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "wall_s": round(self.wall_s, 6),
            "compute_s": round(self.compute_s, 6),
            "speedup": round(self.speedup, 3),
            "experiments": [item.as_dict() for item in self.telemetry],
            "cache": self.cache_stats.as_dict(),
        }


def _worker_init(seed: int) -> None:
    """Deterministically seed the global RNGs in a fresh worker.

    Experiments derive their randomness from explicit per-name streams, so
    this is defense in depth: any stray use of the global generators
    behaves identically no matter which worker runs which task.
    """
    random.seed(seed)
    np.random.seed(seed % 2**32)


def _run_whole(
    experiment_id: str, seed: int, num_requests: Optional[int]
) -> Tuple[ExperimentResult, float, WallPoint]:
    spec = registry.get_spec(experiment_id)
    started = time.perf_counter()
    result = spec.call(seed, num_requests)
    ended = time.perf_counter()
    return result, ended - started, ("run", started, ended, os.getpid())


def _run_shard(
    experiment_id: str, unit: str, seed: int, num_requests: Optional[int]
) -> Tuple[str, object, float, WallPoint]:
    spec = registry.get_spec(experiment_id)
    assert spec.shards is not None
    started = time.perf_counter()
    payload = spec.shards.worker(unit, seed, num_requests)
    ended = time.perf_counter()
    return unit, payload, ended - started, (unit, started, ended, os.getpid())


def _pool_context():
    """Prefer fork (fast, and our caches are fork-safe); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _cost_rank(spec: ExperimentSpec) -> int:
    return COST_CLASSES.index(spec.cost)


def _topological_waves(specs: Sequence[ExperimentSpec]) -> List[List[ExperimentSpec]]:
    """Dependency waves; deps outside the selection count as satisfied."""
    selected = {spec.experiment_id for spec in specs}
    done: set = set()
    remaining = list(specs)
    waves: List[List[ExperimentSpec]] = []
    while remaining:
        ready = [
            spec
            for spec in remaining
            if all(dep in done or dep not in selected for dep in spec.deps)
        ]
        if not ready:
            cycle = [spec.experiment_id for spec in remaining]
            raise ValueError(f"dependency cycle among experiments: {cycle}")
        # Heavy experiments first so the pool drains evenly.
        ready.sort(key=_cost_rank)
        waves.append(ready)
        done.update(spec.experiment_id for spec in ready)
        remaining = [spec for spec in remaining if spec.experiment_id not in done]
    return waves


#: A wave entry: (result, serial-equivalent seconds, shard count, wall points).
_Computed = Tuple[ExperimentResult, float, int, List[WallPoint]]


def _execute_wave_serial(
    wave: Sequence[ExperimentSpec],
    seed: int,
    num_requests: Optional[int],
) -> Dict[str, _Computed]:
    computed: Dict[str, _Computed] = {}
    for spec in wave:
        result, duration, wall = _run_whole(spec.experiment_id, seed, num_requests)
        computed[spec.experiment_id] = (result, duration, 0, [wall])
    return computed


def _execute_wave_parallel(
    pool: ProcessPoolExecutor,
    wave: Sequence[ExperimentSpec],
    seed: int,
    num_requests: Optional[int],
) -> Dict[str, _Computed]:
    whole_futures = {}
    shard_futures = {}
    shard_counts: Dict[str, int] = {}
    for spec in wave:
        if spec.shards is not None and len(spec.shards.units) > 1:
            shard_counts[spec.experiment_id] = len(spec.shards.units)
            for unit in spec.shards.units:
                future = pool.submit(
                    _run_shard, spec.experiment_id, unit, seed, num_requests
                )
                shard_futures[future] = spec.experiment_id
        else:
            whole_futures[pool.submit(
                _run_whole, spec.experiment_id, seed, num_requests
            )] = spec.experiment_id

    payloads: Dict[str, Dict[str, object]] = {
        experiment_id: {} for experiment_id in shard_counts
    }
    compute: Dict[str, float] = {spec.experiment_id: 0.0 for spec in wave}
    walls: Dict[str, List[WallPoint]] = {spec.experiment_id: [] for spec in wave}
    computed: Dict[str, _Computed] = {}
    pending = set(whole_futures) | set(shard_futures)
    while pending:
        finished, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in finished:
            if future in whole_futures:
                experiment_id = whole_futures[future]
                result, duration, wall = future.result()
                walls[experiment_id].append(wall)
                computed[experiment_id] = (result, duration, 0, walls[experiment_id])
            else:
                experiment_id = shard_futures[future]
                unit, payload, duration, wall = future.result()
                payloads[experiment_id][unit] = payload
                compute[experiment_id] += duration
                walls[experiment_id].append(wall)
                if len(payloads[experiment_id]) == shard_counts[experiment_id]:
                    # All shards in: merge deterministically in the parent.
                    spec = registry.get_spec(experiment_id)
                    merge_started = time.perf_counter()
                    result = spec.shards.merge(
                        payloads[experiment_id], seed, num_requests
                    )
                    merge_ended = time.perf_counter()
                    walls[experiment_id].append(
                        ("merge", merge_started, merge_ended, os.getpid())
                    )
                    computed[experiment_id] = (
                        result,
                        compute[experiment_id] + (merge_ended - merge_started),
                        shard_counts[experiment_id],
                        walls[experiment_id],
                    )
    return computed


def _emit_wall_spans(
    sink,
    spec: ExperimentSpec,
    walls: Sequence[WallPoint],
    shards: int,
    origin_s: float,
) -> None:
    """Record one experiment's wall-clock spans on the runner's sink.

    The experiment gets a parent span on the ``experiments`` track
    covering first-start to last-end; each task (shard, whole run,
    merge) becomes a child span on a per-worker ``worker-PID`` track.
    Wall spans are real time -- deliberately outside the byte-identity
    contract sim-time spans live under.
    """
    if not walls:
        return
    ordered = sorted(walls, key=lambda wall: wall[1])
    parent = sink.add_wall_span(
        spec.experiment_id,
        ordered[0][1],
        max(wall[2] for wall in ordered),
        cat="experiment",
        track="experiments",
        origin_s=origin_s,
    )
    if shards == 0 and len(ordered) == 1:
        label, started, ended, pid = ordered[0]
        sink.add_wall_span(
            f"{spec.experiment_id}:{label}", started, ended,
            cat="task", track=f"worker-{pid}", parent=parent, origin_s=origin_s,
        )
        return
    for label, started, ended, pid in ordered:
        sink.add_wall_span(
            f"{spec.experiment_id}:{label}", started, ended,
            cat="merge" if label == "merge" else "shard",
            track=f"worker-{pid}", parent=parent, origin_s=origin_s,
        )


def execute(
    ids: Optional[Sequence[str]] = None,
    seed: int = 0,
    num_requests: Optional[int] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    wall_sink=None,
) -> RunSummary:
    """Run ``ids`` (default: everything) and return results + telemetry.

    ``jobs=1`` runs in-process with no pool; ``jobs>1`` shards across a
    ``ProcessPoolExecutor``.  Either way the results are bit-identical and
    ordered by selection (paper) order.  ``cache=None`` disables caching.

    ``wall_sink`` is an optional :class:`repro.telemetry.Telemetry`
    recording the run's wall-clock shape: one span per experiment, one
    child span per task on a per-worker track, and a ``cache-hit`` /
    ``cache-miss`` instant per cache probe.  Timestamps are microseconds
    since this call started.  Recording never affects results.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    specs = registry.select(ids or ())
    cache = cache if cache is not None else NullCache()
    run_started = time.perf_counter()

    telemetry_by_id: Dict[str, ExperimentTelemetry] = {}
    results_by_id: Dict[str, ExperimentResult] = {}

    # Cache probe (parent process, cheap).
    to_compute: List[ExperimentSpec] = []
    for spec in specs:
        cached = cache.load(spec, seed, num_requests)
        if wall_sink is not None:
            wall_sink.add_event(
                spec.experiment_id,
                (time.perf_counter() - run_started) * 1e6,
                cat="cache-hit" if cached is not None else "cache-miss",
                track="cache",
            )
        if cached is not None:
            results_by_id[spec.experiment_id] = cached
            telemetry_by_id[spec.experiment_id] = ExperimentTelemetry(
                experiment_id=spec.experiment_id,
                compute_s=0.0,
                wall_s=0.0,
                cache="hit",
                shards=0,
                cost=spec.cost,
            )
        else:
            to_compute.append(spec)

    if to_compute:
        waves = _topological_waves(to_compute)
        pool: Optional[ProcessPoolExecutor] = None
        try:
            if jobs > 1:
                pool = ProcessPoolExecutor(
                    max_workers=jobs,
                    mp_context=_pool_context(),
                    initializer=_worker_init,
                    initargs=(seed,),
                )
            for wave in waves:
                wave_started = time.perf_counter()
                if pool is None:
                    computed = _execute_wave_serial(wave, seed, num_requests)
                else:
                    computed = _execute_wave_parallel(pool, wave, seed, num_requests)
                wave_wall = time.perf_counter() - wave_started
                for spec in wave:
                    result, compute_s, shards, walls = computed[spec.experiment_id]
                    if wall_sink is not None:
                        _emit_wall_spans(
                            wall_sink, spec, walls, shards, run_started
                        )
                    results_by_id[spec.experiment_id] = result
                    telemetry_by_id[spec.experiment_id] = ExperimentTelemetry(
                        experiment_id=spec.experiment_id,
                        compute_s=compute_s,
                        wall_s=compute_s if pool is None else wave_wall,
                        cache="miss" if cache.enabled else "off",
                        shards=shards,
                        cost=spec.cost,
                    )
                    cache.store(spec, seed, num_requests, result)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)

    ordered_ids = [spec.experiment_id for spec in specs]
    return RunSummary(
        results=[results_by_id[eid] for eid in ordered_ids],
        telemetry=[telemetry_by_id[eid] for eid in ordered_ids],
        wall_s=time.perf_counter() - run_started,
        jobs=jobs,
        cache_stats=cache.stats,
    )
