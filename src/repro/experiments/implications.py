"""Section IV: the five design implications, each checked by an ablation.

1. Device-level parallelism beyond the two channels barely helps (requests
   rarely overlap): channel-count sweep.
2. Long inter-arrival gaps leave room for idle-time GC: foreground-GC
   comparison with idle GC on/off.
3. A large RAM buffer is of little use under weak locality: measured read
   hit rate.
4. A simple wear-leveling strategy is sufficient: wear evenness under a
   sustained workload.
5. Small (4 KB) requests deserve a fast path: share of single-page
   requests across the traces (the motivation for HPS's 4 KB blocks).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.trace import KIB, MIB, Op, Request
from repro.analysis import render_table, small_request_share
from repro.emmc import EmmcDevice, Geometry, PageKind, collect_wear, four_ps
from repro.sim import Host
from repro.workloads import DEFAULT_SEED, INDIVIDUAL_APPS, generate_trace

from .common import ExperimentResult, individual_traces, replay_on
from .spec import ExperimentSpec


def _implication_1(trace) -> dict:
    """MRT by channel count on a typical trace."""
    results = {}
    for channels in (1, 2, 4):
        geometry = dataclasses.replace(four_ps().geometry, channels=channels)
        config = four_ps(geometry=geometry)
        results[channels] = replay_on(config, trace).stats.mean_response_ms
    return results


def _implication_2(seed: int) -> dict:
    """Foreground GC with and without idle-time collections."""
    geometry = Geometry(
        channels=2, dies_per_chip=1, planes_per_die=1,
        blocks_per_plane={PageKind.K4: 8}, pages_per_block=16,
    )

    def hammer(idle_gc: bool):
        """Run the GC-pressure loop with/without idle GC."""
        device = EmmcDevice(
            four_ps(geometry=geometry, gc_threshold_blocks=2,
                    idle_gc=idle_gc, idle_gc_soft_threshold=6)
        )
        at = 0.0
        for i in range(2000):
            done = device.submit(Request(at, (i % 48) * 4 * KIB, 4 * KIB, Op.WRITE))
            at = done.finish_us + 250_000.0
        return device.stats

    baseline = hammer(False)
    with_idle = hammer(True)
    return {
        "foreground_gc_threshold_only": baseline.gc_collections,
        "foreground_gc_with_idle": with_idle.gc_collections,
        "idle_collections": with_idle.idle_gc_collections,
        "mrt_threshold_only_ms": baseline.mean_response_ms,
        "mrt_with_idle_ms": with_idle.mean_response_ms,
    }


def _implication_3(trace) -> dict:
    """RAM buffer hit rate on a real workload."""
    device = EmmcDevice(four_ps(ram_buffer_bytes=8 * MIB))
    Host(device).replay(trace.without_timing())
    stats = device.buffer.stats
    total = stats.read_hits + stats.read_misses
    return {
        "buffer_mib": 8,
        "read_hit_rate": stats.read_hits / total if total else 0.0,
    }


def _implication_4(seed: int) -> dict:
    """Wear evenness under a sustained hot workload."""
    geometry = Geometry(
        channels=2, dies_per_chip=1, planes_per_die=1,
        blocks_per_plane={PageKind.K4: 8}, pages_per_block=16,
    )
    device = EmmcDevice(four_ps(geometry=geometry, gc_threshold_blocks=2))
    at = 0.0
    for i in range(4000):
        done = device.submit(Request(at, (i % 40) * 4 * KIB, 4 * KIB, Op.WRITE))
        at = done.finish_us
    wear = collect_wear(device.ftl.planes)
    return {
        "total_erases": wear.total_erases,
        "max_erase": wear.max_erase,
        "mean_erase": wear.mean_erase,
        "max_over_mean": wear.max_erase / wear.mean_erase if wear.mean_erase else 0.0,
    }


def _implication_5(traces) -> dict:
    """Share of single-page requests across the 18 traces."""
    shares = {trace.name: small_request_share(trace) for trace in traces}
    majority = sum(1 for share in shares.values() if share >= 0.449)
    return {"traces_with_4k_majority": majority, "max_share": max(shares.values())}


def run(seed: int = DEFAULT_SEED, num_requests: Optional[int] = None) -> ExperimentResult:
    """Run all five implication ablations and summarize."""
    traces = individual_traces(seed=seed, num_requests=num_requests)
    by_name = {trace.name: trace for trace in traces}
    typical = by_name["Twitter"]
    facebook = by_name["Facebook"]

    impl1 = _implication_1(typical)
    impl2 = _implication_2(seed)
    impl3 = _implication_3(facebook)
    impl4 = _implication_4(seed)
    impl5 = _implication_5(traces)

    gain_2_to_4 = 1.0 - impl1[4] / impl1[2]
    rows = [
        ["1", "extra channels barely help",
         f"MRT 1ch={impl1[1]:.2f} 2ch={impl1[2]:.2f} 4ch={impl1[4]:.2f} ms "
         f"(2->4ch gain only {gain_2_to_4 * 100:.0f}%)"],
        ["2", "idle gaps absorb GC",
         f"foreground GC {impl2['foreground_gc_threshold_only']} -> "
         f"{impl2['foreground_gc_with_idle']} with {impl2['idle_collections']} idle collections"],
        ["3", "RAM buffer of little use",
         f"8 MiB buffer read hit rate {impl3['read_hit_rate'] * 100:.1f}%"],
        ["4", "simple wear-leveling suffices",
         f"max/mean erase ratio {impl4['max_over_mean']:.2f} over "
         f"{impl4['total_erases']} erases"],
        ["5", "serve small requests fast",
         f"{impl5['traces_with_4k_majority']}/18 traces have a 4 KB majority"],
    ]
    table = render_table(["Impl", "Claim", "Measured evidence"], rows)
    return ExperimentResult(
        experiment_id="implications",
        title="The five eMMC design implications (ablations)",
        table=table,
        data={"impl1": impl1, "impl2": impl2, "impl3": impl3,
              "impl4": impl4, "impl5": impl5},
    )


SPEC = ExperimentSpec(
    experiment_id="implications",
    title="The five Section-IV design implications, each ablated",
    runner=run,
    cost="medium",
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
