"""Extension study: offloading I/O to an external SD card (Implication 1).

"For most traces, using an external SDcard could unexpectedly degrade
overall performance because the slower external SDcard negatively affect
the overall performance when the internal eMMC device alone can process
most requests in time."  (The paper notes the Nexus 5's eMMC is roughly
3x the best of 8 tested SD cards.)

We model the SD card as a one-channel, two-die device with a slow bus and
a weak controller (about 3x slower overall), route a fraction of the
address space to it, and measure the combined mean response time.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.trace import Trace
from repro.analysis import render_table
from repro.workloads import DEFAULT_SEED, generate_trace
from repro.emmc import Geometry, LatencyParams, PageKind, PageTiming, four_ps
from repro.emmc.device import DeviceConfig

from .common import ExperimentResult, replay_on
from .spec import ExperimentSpec


def sdcard_config() -> DeviceConfig:
    """A class-10-style SD card: one channel, slow bus, weak controller."""
    return DeviceConfig(
        name="SDcard",
        geometry=Geometry(
            channels=1,
            chips_per_channel=1,
            dies_per_chip=2,
            planes_per_die=2,
            blocks_per_plane={PageKind.K4: 1024},
            pages_per_block=1024,
        ),
        latency=LatencyParams(
            page={
                PageKind.K4: PageTiming(read_us=300.0, program_us=2600.0),
            },
            bus_bytes_per_us=15.0,  # ~15 MB/s bus
            ftl_overhead_us=350.0,  # weak controller: poor random 4K
            command_overhead_us=40.0,
        ),
    )


def split_trace(trace: Trace, offload_fraction: float) -> Dict[str, Trace]:
    """Deterministically route a fraction of the address space to the card.

    Addresses hash by 1 MiB region so related data stays together, like
    moving whole files/directories to external storage.
    """
    if not 0.0 <= offload_fraction <= 1.0:
        raise ValueError("offload fraction must be in [0, 1]")
    internal = []
    external = []
    for request in trace:
        region = request.lba // (1024 * 1024)
        to_card = (region * 2654435761 % 2**32) / 2**32 < offload_fraction
        (external if to_card else internal).append(request)
    return {
        "internal": trace.with_requests(internal),
        "external": trace.with_requests(external),
    }


def run(
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
    app: str = "Facebook",
    fractions: Sequence[float] = (0.0, 0.25, 0.5),
) -> ExperimentResult:
    """Overall MRT as more of the workload moves to the SD card."""
    trace = generate_trace(app, seed=seed, num_requests=num_requests)
    rows = []
    data = {}
    for fraction in fractions:
        parts = split_trace(trace, fraction)
        responses = []
        for name, part in parts.items():
            if len(part) == 0:
                continue
            config = four_ps() if name == "internal" else sdcard_config()
            result = replay_on(config, part)
            responses.extend(result.stats.response_us)
        mrt_ms = sum(responses) / len(responses) / 1000.0 if responses else 0.0
        data[fraction] = mrt_ms
        rows.append(
            [f"{fraction * 100:.0f}%", len(parts["external"]), mrt_ms]
        )
    table = render_table(
        ["Offloaded", "Requests on SDcard", "Overall MRT ms"],
        rows,
        title=f"{app}: moving I/O to an external SD card",
    )
    return ExperimentResult(
        experiment_id="sdcard_study",
        title="Implication 1: external SD card offloading degrades MRT",
        table=table,
        data={"mrt_by_fraction": data},
    )


SPEC = ExperimentSpec(
    experiment_id="sdcard_study",
    title="External SD card offloading study",
    runner=run,
    cost="light",
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
