"""Section II-C: BIOtracer monitoring overhead (~2 % extra I/Os).

Runs application models through the simulated Android stack with the
tracer attached and reports extra-I/O ratios: the paper's analysis says a
32 KB buffer flush (every ~300 records) costs about 6 extra operations,
i.e. roughly 2 % overhead.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis import render_table
from repro.android import collect_trace

DEFAULT_APPS = ("Messaging", "Installing", "CameraVideo", "WebBrowsing")


def run(
    apps: Optional[List[str]] = None,
    duration_s: float = 600.0,
    seed: int = 0,
):
    """Measure tracer overhead for a few applications."""
    from .common import ExperimentResult

    selected = list(apps) if apps is not None else list(DEFAULT_APPS)
    rows = []
    ratios = {}
    for app in selected:
        result = collect_trace(app, duration_s=duration_s, seed=seed)
        stats = result.tracer_stats
        ratios[app] = stats.overhead_ratio
        rows.append(
            [
                app,
                stats.records,
                stats.flushes,
                stats.overhead_ios,
                f"{stats.overhead_ratio * 100:.2f}%",
            ]
        )
    table = render_table(
        ["App", "Records", "Buffer flushes", "Extra I/Os", "Overhead"], rows
    )
    return ExperimentResult(
        experiment_id="overhead",
        title="BIOtracer monitoring overhead (paper: ~2 %)",
        table=table,
        data={"ratios": ratios},
    )


def run_spec(seed: int, num_requests) -> "ExperimentResult":
    """Registry adapter: quick mode (any ``num_requests``) trims the run.

    The tracer model is mechanistic -- the seed only perturbs arrival
    jitter inside the stack simulation, and the registry historically ran
    it at the default seed -- so the spec marks the experiment
    seed-independent and the cache key ignores the seed.
    """
    del seed
    return run(duration_s=120.0 if num_requests else 600.0)


from .spec import ExperimentSpec  # noqa: E402  -- after run_spec, by design

SPEC = ExperimentSpec(
    experiment_id="overhead",
    title="BIOtracer monitoring overhead (~2 % extra I/Os)",
    runner=run_spec,
    cost="medium",
    uses_seed=False,
    extra_config={"quick_duration_s": 120.0, "full_duration_s": 600.0},
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
