"""Extension study: GC pressure, write amplification and lifetime.

Section V argues that with equal capacity an 8 KB-page device "has a much
fewer number of pages ... more garbage collection operations after its
limited number of free pages are quickly consumed by the small random
write requests. More GC operations further lowers the performance and
shrinks the lifetime."  The Fig. 8/9 replays run on a brand-new 32 GB
device where GC never triggers, so this experiment scales the geometry
down (same shape, 1/1024 capacity) and replays a small-write-heavy trace
repeatedly until the device is under sustained GC pressure, then reports:

* per-block erase cycles (the lifetime metric: flash blocks endure a fixed
  number of program/erase cycles, and 8PS has half as many blocks),
* GC page migrations,
* write amplification = (host + padding + GC) bytes / host bytes.

An observed HPS trade-off surfaces here: an LPN written inside an
8 KB-aligned pair lands in an 8 KB page, while the same LPN overwritten as
a lone page lands in a 4 KB page, so invalidations scatter across both
pools and the small 4 KB pool needs valid-page migration during GC --
kind-aware GC placement would be the natural next optimization.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.trace import Request
from repro.analysis import render_table
from repro.workloads import DEFAULT_SEED, generate_trace
from repro.emmc import EmmcDevice, PageKind, collect_wear, eight_ps, four_ps, hps

from .common import ExperimentResult
from .spec import ExperimentSpec

#: Scaled-down per-plane block pools: same 2:1 structure, 32 MB devices.
_SMALL_POOLS = {
    "4PS": {PageKind.K4: 32},
    "8PS": {PageKind.K8: 16},
    "HPS": {PageKind.K4: 16, PageKind.K8: 8},
}


def _scaled_config(name: str):
    base = {"4PS": four_ps, "8PS": eight_ps, "HPS": hps}[name]()
    geometry = dataclasses.replace(
        base.geometry, blocks_per_plane=_SMALL_POOLS[name], pages_per_block=64
    )
    return base.with_overrides(geometry=geometry, gc_threshold_blocks=2)


def run(
    seed: int = DEFAULT_SEED,
    num_requests: Optional[int] = None,
    rounds: int = 6,
    app: str = "Messaging",
) -> ExperimentResult:
    """Sustained small-write pressure on scaled-down devices."""
    trace = generate_trace(app, seed=seed, num_requests=num_requests or 3000)
    capacity = _scaled_config("4PS").geometry.capacity_bytes()
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for name in ("4PS", "8PS", "HPS"):
        device = EmmcDevice(_scaled_config(name))
        window = capacity // 2
        clock = 0.0
        for _ in range(rounds):
            for request in trace.writes:
                clock += 10_000.0  # modest load: GC pressure, not overload
                size = min(request.size, window // 2)
                # Fold the full-device addresses into the scaled device so
                # the same overwrite pattern (hence reclaimable garbage)
                # appears at 1/1024 scale.
                lba = request.lba % max(4096, window - size)
                lba -= lba % 4096
                device.submit(Request(clock, lba, size, request.op))
        stats = device.stats
        wear = collect_wear(device.ftl.planes)
        amplification = (
            (stats.flash_bytes_consumed
             + stats.gc_migrated_slots * 4096)
            / max(1, stats.data_bytes_written)
        )
        data[name] = {
            "erases": stats.erases,
            "mean_block_cycles": wear.mean_erase,
            "gc_migrated_slots": stats.gc_migrated_slots,
            "write_amplification": amplification,
            "mrt_ms": stats.mean_response_ms,
        }
        rows.append(
            [
                name,
                stats.erases,
                wear.mean_erase,
                stats.gc_migrated_slots,
                amplification,
                stats.mean_response_ms,
            ]
        )
    table = render_table(
        ["Scheme", "Erases", "Cycles/block", "Migrated slots", "Write amp", "MRT ms"],
        rows,
        title=f"Sustained {app} writes, {rounds} rounds on 32 MB-scale devices",
    )
    return ExperimentResult(
        experiment_id="lifetime",
        title="GC pressure and write amplification under sustained small writes",
        table=table,
        data=data,
    )


SPEC = ExperimentSpec(
    experiment_id="lifetime",
    title="GC pressure, write amplification and lifetime extension study",
    runner=run,
    cost="light",
)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
