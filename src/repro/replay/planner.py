"""Planning pass: a slimmed sequential FTL walk over the trace columns.

The planner walks the trace once, in arrival order, and does two things
per request:

* mutates the device's **real** FTL structures (planes, blocks, free
  lists, mapping table, allocator cursor) to exactly the state the event
  kernel's expansion would leave, and
* emits the request's flash operations -- kind, busy unit, channel, unit
  latency, channel transfer latency -- appended to flat per-op arrays,
  with a per-request offset table.

Two walk speeds coexist.  The *slim* path handles the overwhelmingly
common cases arithmetically: a write whose groups cannot trigger GC
(free-block pools stay above the threshold even after every block this
request opens), and a read that touches only pre-trace data (the
closed-form preload placement).  Everything else -- GC-risky writes,
reads of rewritten data -- goes through the real :meth:`Ftl.write` /
:meth:`Ftl.read` for that one request, so state stays exact without the
planner re-implementing GC, wear leveling or victim policies.

The slim paths are proven equivalent to the kernel's:

* write groups are emitted in :meth:`RequestDistributor.split_write`
  order (full large groups, then the tail), and planes advance
  round-robin from the allocator cursor -- so the op sequence, the block
  opens (lowest-erase-count pop) and the mapping updates are the ones
  ``Ftl.write`` performs group by group;
* a read of never-written data produces one op per preload page group in
  ascending group order, which is ``Ftl.read``'s first-seen grouping for
  ascending LPNs, with the same per-group payloads.

The planner never touches ``DeviceStats`` -- accounting rides in the
returned :class:`ReplayPlan` and is applied once by the engine, after
the timing pass, in the same order the kernel would have accumulated it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.emmc.ftl.mapping import PRELOADED_BLOCK, PhysicalLocation
from repro.emmc.ops import FlashOpType, WriteGroup
from repro.trace import SECTOR

#: ``op_kind`` codes in the plan arrays (order-of-dispatch semantics
#: follow :meth:`EmmcDevice._schedule`): read, program, erase.
PLAN_READ = 0
PLAN_PROGRAM = 1
PLAN_ERASE = 2

#: The planner creates one :class:`PhysicalLocation` per written page --
#: the hottest allocation in the whole pass.  A frozen dataclass pays five
#: guarded ``object.__setattr__`` calls in its generated ``__init__``;
#: building the instance via ``__new__`` and filling ``__dict__`` directly
#: yields an *identical* object (same fields, same dataclass
#: ``__eq__``/``__hash__``/``repr``) about 25 % faster.
_NEW_LOCATION = PhysicalLocation.__new__


@dataclass
class ReplayPlan:
    """Per-request flash-op schedule plus accounting deltas for one trace."""

    #: One row per flash op, in dispatch order (uint8 PLAN_* codes).
    op_kind: np.ndarray
    #: Busy-unit index per op (die, or plane with ``multi_plane``).
    op_unit: np.ndarray
    #: Channel index per op (unused for erases, kept aligned).
    op_channel: np.ndarray
    #: Unit occupation per op: read/program/erase latency, microseconds.
    op_unit_us: np.ndarray
    #: Channel occupation per op (0.0 for erases), microseconds.
    op_transfer_us: np.ndarray
    #: Length ``n_requests + 1``: ops of request ``i`` are rows
    #: ``req_ops[i]:req_ops[i+1]``.
    req_ops: np.ndarray

    # -- accounting deltas (applied to DeviceStats by the engine) ----------
    data_bytes_written: int
    flash_bytes_consumed: int
    data_bytes_read: int
    gc_collections: int
    gc_migrated_slots: int
    preloaded_pages: int
    #: Per-kind op-count deltas, insertion-ordered by first op occurrence
    #: (merging them preserves the kernel's dict insertion order).
    page_reads: Dict
    page_programs: Dict

    # -- telemetry ----------------------------------------------------------
    slim_writes: int
    slim_reads: int
    fallback_requests: int


def plan_trace(device, columns) -> ReplayPlan:
    """Run the planning pass for ``columns`` on ``device`` (mutates its FTL)."""
    return _Planner(device, columns).run()


class _Planner:
    """One planning pass; see the module docstring for the contract."""

    def __init__(self, device, columns) -> None:
        self.device = device
        self.columns = columns
        ftl = device.ftl
        geometry = device.geometry
        latency = device.latency
        self.ftl = ftl
        self.planes = ftl.planes
        self.num_planes = geometry.num_planes
        multi_plane = device.config.multi_plane
        self.unit_of = [
            plane if multi_plane else geometry.die_of(plane)
            for plane in range(self.num_planes)
        ]
        self.chan_of = [geometry.channel_of(plane) for plane in range(self.num_planes)]
        # Rotated plane patterns: groups starting at cursor ``c`` land on
        # planes ``c, c+1, ... (mod P)``; tiling these lists reproduces
        # the allocator's round-robin without a per-group call.
        planes_range = range(self.num_planes)
        self.unit_rot = [
            [self.unit_of[(c + i) % self.num_planes] for i in planes_range]
            for c in planes_range
        ]
        self.chan_rot = [
            [self.chan_of[(c + i) % self.num_planes] for i in planes_range]
            for c in planes_range
        ]
        kinds = geometry.kinds()
        self.read_us = {kind: latency.timing(kind).read_us for kind in kinds}
        self.program_us = {kind: latency.timing(kind).program_us for kind in kinds}
        self.erase_us = latency.erase_us
        self.pages_per_block = {kind: geometry.pages_for(kind) for kind in kinds}
        self._latency = latency
        self._transfer_memo: Dict[int, float] = {}
        distributor = device.distributor
        self.large = distributor.largest
        self.small = distributor.smallest
        self.hybrid = distributor.hybrid
        self.slots_per_large = self.large.slots
        # PageKind.bytes/.slots are computed properties and the per-write
        # latencies are constants of the kind -- hoist them all out of the
        # per-request paths.
        self.large_bytes = self.large.bytes
        self.small_bytes = self.small.bytes
        self.large_program_us = self.program_us[self.large]
        self.small_program_us = self.program_us[self.small]
        self.large_transfer_us = latency.transfer_us(self.large_bytes)
        self.small_transfer_us = latency.transfer_us(self.small_bytes)
        self.preload_kind = ftl.preload_kind
        self.preload_slots = self.preload_kind.slots
        self.preload_slot_bytes = self.preload_kind.bytes // self.preload_slots
        self.preload_read_us = self.read_us[self.preload_kind]
        self.preload_full_transfer_us = latency.transfer_us(
            self.preload_slots * self.preload_slot_bytes
        )
        self.gc_threshold = ftl.gc.threshold_blocks
        self.table = ftl.mapping.bulk_table()
        self.allocator = ftl.allocator

        # Written/mapped bitmaps over the LPN range the trace touches,
        # seeded from any pre-existing mapping state (reused devices).
        # bytearrays, not ndarrays: the per-request probes are tiny slices
        # where ``b"\x01" in view`` beats a ufunc reduction by an order of
        # magnitude.
        if len(columns):
            cap = int((columns.lba + columns.size).max()) // SECTOR
        else:
            cap = 0
        self.written = bytearray(cap)
        self.mapped = bytearray(cap)
        # Shared all-ones buffer for range sets (sliced, never copied).
        max_pages = int(columns.size.max()) // SECTOR if len(columns) else 0
        self._ones = memoryview(b"\x01" * max_pages)
        for lpn, location in ftl.mapping.items():
            if lpn < cap:
                self.mapped[lpn] = 1
                if location.block_id != PRELOADED_BLOCK:
                    self.written[lpn] = 1

        # Per-op output columns (lists; converted once at the end).
        self.op_kind: List[int] = []
        self.op_unit: List[int] = []
        self.op_channel: List[int] = []
        self.op_unit_us: List[float] = []
        self.op_transfer_us: List[float] = []
        self.req_ops: List[int] = [0]

        # Accounting deltas.
        self.data_bytes_written = 0
        self.flash_bytes_consumed = 0
        self.data_bytes_read = 0
        self.gc_collections = 0
        self.gc_migrated_slots = 0
        self.preloaded_pages = 0
        self.page_reads: Dict = {}
        self.page_programs: Dict = {}
        self.slim_writes = 0
        self.slim_reads = 0
        self.fallback_requests = 0

    # -- helpers -----------------------------------------------------------

    def _transfer_of(self, payload_bytes: int) -> float:
        memo = self._transfer_memo
        duration = memo.get(payload_bytes)
        if duration is None:
            duration = self._latency.transfer_us(payload_bytes)
            memo[payload_bytes] = duration
        return duration

    def _extend_planes(self, cursor: int, count: int) -> None:
        """Append ``count`` unit/channel rows striped from ``cursor``."""
        unit_pattern = self.unit_rot[cursor]
        chan_pattern = self.chan_rot[cursor]
        P = self.num_planes
        if count <= P:
            self.op_unit.extend(unit_pattern[:count])
            self.op_channel.extend(chan_pattern[:count])
        else:
            full, rem = divmod(count, P)
            self.op_unit.extend(unit_pattern * full + unit_pattern[:rem])
            self.op_channel.extend(chan_pattern * full + chan_pattern[:rem])

    # -- the walk ----------------------------------------------------------

    def run(self) -> ReplayPlan:
        columns = self.columns
        lba_list = columns.lba.tolist()
        size_list = columns.size.tolist()
        op_list = columns.op.tolist()
        req_ops_append = self.req_ops.append
        for i, lba in enumerate(lba_list):
            first = lba // SECTOR
            pages = size_list[i] // SECTOR
            if op_list[i]:
                self._plan_write(first, pages)
            else:
                self._plan_read(first, pages, size_list[i])
            req_ops_append(len(self.op_kind))
        return ReplayPlan(
            op_kind=np.array(self.op_kind, dtype=np.uint8),
            op_unit=np.array(self.op_unit, dtype=np.int32),
            op_channel=np.array(self.op_channel, dtype=np.int32),
            op_unit_us=np.array(self.op_unit_us, dtype=np.float64),
            op_transfer_us=np.array(self.op_transfer_us, dtype=np.float64),
            req_ops=np.array(self.req_ops, dtype=np.int64),
            data_bytes_written=self.data_bytes_written,
            flash_bytes_consumed=self.flash_bytes_consumed,
            data_bytes_read=self.data_bytes_read,
            gc_collections=self.gc_collections,
            gc_migrated_slots=self.gc_migrated_slots,
            preloaded_pages=self.preloaded_pages,
            page_reads=self.page_reads,
            page_programs=self.page_programs,
            slim_writes=self.slim_writes,
            slim_reads=self.slim_reads,
            fallback_requests=self.fallback_requests,
        )

    # -- writes ------------------------------------------------------------

    def _plan_write(self, first: int, pages: int) -> None:
        L = self.slots_per_large
        if L == 1:
            n_full, tail = pages, 0
        else:
            n_full, tail = divmod(pages, L)
        if tail and self.hybrid:
            n_large, n_small = n_full, tail
        elif tail:
            n_large, n_small = n_full + 1, 0  # padded trailing large group
        else:
            n_large, n_small = n_full, 0
        cursor = self.allocator.cursor
        if not self._write_fits(cursor, n_large, n_small):
            self._fallback_write(first, pages)
            return
        self.slim_writes += 1
        total_groups = n_large + n_small
        end = first + pages

        # Op emission, in split_write group order.
        self.op_kind.extend([PLAN_PROGRAM] * total_groups)
        self._extend_planes(cursor, total_groups)
        large, small = self.large, self.small
        if n_large:
            self.op_unit_us.extend([self.large_program_us] * n_large)
            self.op_transfer_us.extend([self.large_transfer_us] * n_large)
            self.page_programs[large] = self.page_programs.get(large, 0) + n_large
        if n_small:
            self.op_unit_us.extend([self.small_program_us] * n_small)
            self.op_transfer_us.extend([self.small_transfer_us] * n_small)
            self.page_programs[small] = self.page_programs.get(small, 0) + n_small
        self.data_bytes_written += pages * SECTOR
        self.flash_bytes_consumed += (
            n_large * self.large_bytes + n_small * self.small_bytes
        )

        # State mutation: fill each touched plane's active blocks with the
        # LPN tuples the per-group walk would have programmed there.
        stale_possible = 1 in self.written[first:end]
        P = self.num_planes
        planes = self.planes
        if n_full:
            base, extra = divmod(n_full, P)
            for offset in range(P if n_full >= P else n_full):
                count = base + 1 if offset < extra else base
                if not count:
                    continue
                start_lpn = first + offset * L
                step = P * L
                stop = start_lpn + count * step
                if L == 1:
                    tuples = [(lpn,) for lpn in range(start_lpn, stop, step)]
                elif L == 2:
                    tuples = [(lpn, lpn + 1) for lpn in range(start_lpn, stop, step)]
                else:
                    tuples = [
                        tuple(range(lpn, lpn + L)) for lpn in range(start_lpn, stop, step)
                    ]
                self._fill_plane(
                    planes[(cursor + offset) % P],
                    large,
                    tuples,
                    stale_possible,
                    singles=L == 1,
                )
        if tail:
            tail_first = first + n_full * L
            if self.hybrid:
                for offset in range(tail):
                    self._fill_plane(
                        planes[(cursor + n_full + offset) % P],
                        small,
                        [(tail_first + offset,)],
                        stale_possible,
                        singles=True,
                    )
            else:
                padded = tuple(range(tail_first, end)) + (None,) * (L - tail)
                self._fill_plane(
                    planes[(cursor + n_full) % P], large, [padded], stale_possible
                )
        self.allocator.advance(total_groups)
        ones = self._ones[:pages]
        self.written[first:end] = ones
        self.mapped[first:end] = ones

    def _write_fits(self, cursor: int, n_large: int, n_small: int) -> bool:
        """Conservative GC-safety check: no pool may near its threshold.

        The kernel runs GC when a group's allocation finds the free pool
        at or below ``threshold_blocks`` *with a reclaimable victim*.
        The slim path requires every touched (plane, kind) pool to stay
        strictly above the threshold even after all the blocks this
        request opens -- then ``needs_gc`` is False at every allocation
        regardless of victim availability, and allocation cannot raise.
        Pools that merely *might* GC go through the real write path.
        """
        P = self.num_planes
        planes = self.planes
        if n_large:
            base, extra = divmod(n_large, P)
            for offset in range(P if n_large >= P else n_large):
                count = base + 1 if offset < extra else base
                if count and not self._pool_fits(
                    planes[(cursor + offset) % P], self.large, count
                ):
                    return False
        if n_small:
            base, extra = divmod(n_small, P)
            tail_cursor = cursor + n_large
            for offset in range(P if n_small >= P else n_small):
                count = base + 1 if offset < extra else base
                if count and not self._pool_fits(
                    planes[(tail_cursor + offset) % P], self.small, count
                ):
                    return False
        return True

    def _pool_fits(self, plane, kind, groups: int) -> bool:
        active_id = plane.active_block[kind]
        available = 0
        if active_id is not None:
            block = plane.blocks[kind][active_id]
            available = block.pages_per_block - block.write_ptr
        if groups <= available:
            opens = 0
        else:
            per_block = self.pages_per_block[kind]
            opens = -(-(groups - available) // per_block)
        return len(plane.free_blocks[kind]) - opens > self.gc_threshold

    def _fill_plane(
        self, plane, kind, tuples, stale_possible: bool, singles: bool = False
    ) -> None:
        """Program ``tuples`` into ``plane``'s active ``kind`` blocks.

        ``singles`` promises every entry is a padding-free 1-tuple (full
        1-slot groups, hybrid-tail singles), letting the hottest shape
        skip the per-slot loop.
        """
        allocate = self.allocator.allocate
        table = self.table
        plane_id = plane.plane_id
        planes = self.planes
        new = _NEW_LOCATION
        index = 0
        total = len(tuples)
        while index < total:
            block, _ = allocate(plane, kind)
            take = block.pages_per_block - block.write_ptr
            if take > total - index:
                take = total - index
            chunk = tuples[index : index + take]
            page = block.write_ptr
            block.slots.extend(chunk)
            block.write_ptr += take
            block_id = block.block_id
            if singles and not stale_possible:
                for entry in chunk:
                    location = new(PhysicalLocation)
                    location.__dict__.update(
                        plane=plane_id, kind=kind, block_id=block_id,
                        page=page, slot=0,
                    )
                    table[entry[0]] = location
                    page += 1
                block.valid_count += take
                index += take
                continue
            valid = 0
            if stale_possible:
                get = table.get
                for entry in chunk:
                    for slot, lpn in enumerate(entry):
                        if lpn is None:
                            continue
                        valid += 1
                        old = get(lpn)
                        location = new(PhysicalLocation)
                        location.__dict__.update(
                            plane=plane_id, kind=kind, block_id=block_id,
                            page=page, slot=slot,
                        )
                        table[lpn] = location
                        if old is not None and old.block_id != PRELOADED_BLOCK:
                            planes[old.plane].blocks[old.kind][old.block_id].invalidate(
                                old.page, old.slot
                            )
                    page += 1
            else:
                for entry in chunk:
                    for slot, lpn in enumerate(entry):
                        if lpn is None:
                            continue
                        valid += 1
                        location = new(PhysicalLocation)
                        location.__dict__.update(
                            plane=plane_id, kind=kind, block_id=block_id,
                            page=page, slot=slot,
                        )
                        table[lpn] = location
                    page += 1
            block.valid_count += valid
            index += take

    def _fallback_write(self, first: int, pages: int) -> None:
        """GC possible: run the real FTL write for this one request."""
        self.fallback_requests += 1
        lpns = list(range(first, first + pages))
        large = self.large
        L = large.slots
        if L == 1:
            groups = [WriteGroup(large, (lpn,)) for lpn in lpns]
        else:
            groups = []
            index = 0
            while index + L <= pages:
                groups.append(WriteGroup(large, tuple(lpns[index : index + L])))
                index += L
            remainder = lpns[index:]
            if remainder:
                if self.hybrid:
                    groups.extend(WriteGroup(self.small, (lpn,)) for lpn in remainder)
                else:
                    padded = tuple(remainder) + (None,) * (L - len(remainder))
                    groups.append(WriteGroup(large, padded))
        outcome = self.ftl.write(groups)
        self.data_bytes_written += outcome.data_bytes
        self.flash_bytes_consumed += outcome.flash_bytes
        self.gc_collections += len(outcome.gc_results)
        self.gc_migrated_slots += sum(
            result.migrated_slots for result in outcome.gc_results
        )
        self._emit_flash_ops(outcome.ops)
        end = first + pages
        ones = self._ones[:pages]
        self.written[first:end] = ones
        self.mapped[first:end] = ones

    def _emit_flash_ops(self, ops) -> None:
        """Convert real FlashOps (fallback paths) into plan rows, in order."""
        unit_of = self.unit_of
        chan_of = self.chan_of
        read_type = FlashOpType.READ
        program_type = FlashOpType.PROGRAM
        for op in ops:
            plane = op.plane
            self.op_unit.append(unit_of[plane])
            self.op_channel.append(chan_of[plane])
            kind = op.kind
            if op.op_type is read_type:
                self.op_kind.append(PLAN_READ)
                self.op_unit_us.append(self.read_us[kind])
                self.op_transfer_us.append(self._transfer_of(op.payload_bytes))
                self.page_reads[kind] = self.page_reads.get(kind, 0) + 1
            elif op.op_type is program_type:
                self.op_kind.append(PLAN_PROGRAM)
                self.op_unit_us.append(self.program_us[kind])
                self.op_transfer_us.append(self._transfer_of(op.payload_bytes))
                self.page_programs[kind] = self.page_programs.get(kind, 0) + 1
            else:
                self.op_kind.append(PLAN_ERASE)
                self.op_unit_us.append(self.erase_us)
                self.op_transfer_us.append(0.0)

    # -- reads -------------------------------------------------------------

    def _plan_read(self, first: int, pages: int, size: int) -> None:
        self.data_bytes_read += size
        end = first + pages
        if 1 in self.written[first:end]:
            self._fallback_read(first, end)
            return
        self.slim_reads += 1
        # Closed-form preload: ascending LPNs group into ascending preload
        # page groups, one read op per group (Ftl.read's first-seen order).
        S = self.preload_slots
        group_first = first // S
        group_last = (end - 1) // S
        n_ops = group_last - group_first + 1
        kind = self.preload_kind
        slot_bytes = self.preload_slot_bytes
        if n_ops == 1:
            # Fast lane for the dominant shape: one preload group.
            plane = group_first % self.num_planes
            self.op_kind.append(PLAN_READ)
            self.op_unit.append(self.unit_of[plane])
            self.op_channel.append(self.chan_of[plane])
            self.op_unit_us.append(self.preload_read_us)
            self.op_transfer_us.append(self._transfer_of(pages * slot_bytes))
        else:
            self.op_kind.extend([PLAN_READ] * n_ops)
            self._extend_planes(group_first % self.num_planes, n_ops)
            self.op_unit_us.extend([self.preload_read_us] * n_ops)
            first_count = (group_first + 1) * S - first
            last_count = end - group_last * S
            transfers = [self.preload_full_transfer_us] * n_ops
            transfers[0] = self._transfer_of(first_count * slot_bytes)
            transfers[-1] = self._transfer_of(last_count * slot_bytes)
            self.op_transfer_us.extend(transfers)
        self.page_reads[kind] = self.page_reads.get(kind, 0) + n_ops
        # First-touch LPNs get their preload mapping entry, exactly as
        # Ftl._preload would have inserted it.
        segment = self.mapped[first:end]
        if 0 in segment:
            table = self.table
            P = self.num_planes
            new = _NEW_LOCATION
            touched = 0
            for offset, seen in enumerate(segment):
                if seen:
                    continue
                touched += 1
                lpn = first + offset
                group = lpn // S
                location = new(PhysicalLocation)
                location.__dict__.update(
                    plane=group % P,
                    kind=kind,
                    block_id=PRELOADED_BLOCK,
                    page=group // P,
                    slot=lpn - group * S,
                )
                table[lpn] = location
            self.preloaded_pages += touched
            self.mapped[first:end] = self._ones[:pages]

    def _fallback_read(self, first: int, end: int) -> None:
        """The segment holds rewritten data: real FTL lookup/grouping."""
        self.fallback_requests += 1
        outcome = self.ftl.read(list(range(first, end)))
        self.preloaded_pages += outcome.preloaded_pages
        self._emit_flash_ops(outcome.ops)
        self.mapped[first:end] = self._ones[: end - first]
