"""Vectorized replay fast path for queue_depth=1 open-loop replay.

Every paper experiment replays traces on the same device configuration:
a single command queue (``queue_depth=1``), open-loop arrivals, no RAM
buffer, no fault injection.  Under those conditions each request's full
schedule is fixed at dispatch (FIFO, no preemption), so the event kernel
is pure overhead: the heap, the Event objects, the timer churn and the
per-op method dispatch all reproduce arithmetic that can be computed in
two tight passes over the trace columns instead.

The fast path is split into:

* :mod:`repro.replay.preconditions` -- the eligibility rules; anything
  the two-pass engine cannot model bit-exactly falls back to the kernel.
* :mod:`repro.replay.planner` -- the planning pass: a slimmed sequential
  FTL walk over :class:`~repro.trace.columns.TraceColumns` that mutates
  the real FTL structures exactly like the kernel would and emits each
  request's flash ops (unit, channel, latency components) as NumPy
  arrays.
* :mod:`repro.replay.timing` -- the timing pass: replays the kernel's
  ``max(frontier, earliest)`` reservation arithmetic over the plan
  arrays, operation by operation, in the exact same IEEE-754 order.
* :mod:`repro.replay.engine` -- orchestration: runs both passes, applies
  the resulting device state (stats, queue, power, resource frontiers,
  kernel clock and timers), and assembles the ``ReplayResult`` with a
  ready-made columnar view.

The contract is **bit-identity**: a fast-path replay must leave the
device -- stats, FTL, mapping, timelines, power model, kernel clock --
in exactly the state a kernel replay would, and return exactly the same
timestamps.  ``tests/replay`` and the CI replay-parity job enforce this
against the 57 experiment digests and the frozen goldens.
"""

from .engine import FastPathUnavailable, fast_replay, maybe_fast_replay
from .preconditions import REPLAY_FASTPATH_ENV, FastPathDecision, decide

__all__ = [
    "REPLAY_FASTPATH_ENV",
    "FastPathDecision",
    "FastPathUnavailable",
    "decide",
    "fast_replay",
    "maybe_fast_replay",
]
