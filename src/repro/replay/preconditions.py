"""Eligibility rules for the replay fast path.

The two-pass engine models exactly one device behaviour: ``queue_depth=1``
FIFO service with no RAM buffer, no fault injection, no idle-time GC, no
copy-back programming, page mapping, and a kernel that holds nothing but
the device's own speculative timers.  Everything else falls back to the
event kernel -- correctness first, speed second.

The decision is pure (no device mutation) and cheap enough to run on
every ``Host.replay`` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Environment switch for the dispatcher (read by
#: :func:`repro.replay.engine.maybe_fast_replay`):
#:
#: * ``auto`` (default/unset) -- use the fast path when eligible, fall
#:   back to the event kernel otherwise;
#: * ``off``/``0``/``kernel`` -- never use the fast path;
#: * ``require``/``force`` -- raise if the fast path is ineligible
#:   (parity jobs use this so a silent fallback cannot mask a regression).
REPLAY_FASTPATH_ENV = "REPRO_REPLAY_FASTPATH"


@dataclass(frozen=True)
class FastPathDecision:
    """Outcome of the eligibility check, with human-readable reasons."""

    eligible: bool
    reasons: Tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.eligible


def decide(device, trace) -> FastPathDecision:
    """Whether ``device`` can replay ``trace`` on the fast path.

    Every reason returned names a behaviour the two-pass engine does not
    model; an empty tuple means the fast path is bit-exact for this
    replay.
    """
    reasons = []
    config = device.config
    if config.queue_depth != 1:
        reasons.append(f"queue_depth={config.queue_depth} (fast path models depth 1)")
    if device.buffer is not None:
        reasons.append("RAM buffer attached (absorption/eviction is event-driven)")
    if device.faults is not None:
        reasons.append("fault injection armed (retries schedule kernel events)")
    if config.idle_gc:
        reasons.append("idle-time GC enabled (IDLE_GC timers fire between requests)")
    if config.gc_copyback:
        reasons.append("copy-back GC programs skip the channel (not planned)")
    if config.mapping_scheme != "page":
        reasons.append(f"mapping scheme {config.mapping_scheme!r} (fast path walks the page FTL)")
    if getattr(device, "telemetry", None) is not None:
        # Parity tests (tests/telemetry/test_host_observer.py) pin this
        # as a *fallback* precondition: the vectorized path computes the
        # same timings but fires no events and records no spans, so a
        # telemetry replay must take the kernel -- and
        # REPRO_REPLAY_FASTPATH=require raises here rather than silently
        # losing the span stream.
        reasons.append("telemetry sink attached (fast path records no spans)")
    kernel = device.kernel
    if kernel.record_events:
        reasons.append("kernel records its event trace (fast path fires no events)")
    if kernel.pending_material():
        reasons.append("kernel holds pending material events (foreign producers)")
    if reasons:
        return FastPathDecision(False, tuple(reasons))
    # The only live events allowed on the kernel are the device's own
    # speculative timers -- anything else (another device sharing the
    # loop, app-stack ops) could interleave with the replay.
    own_timers = 0
    for timer in (device._idle_gc_timer, device._power_down_timer):
        if timer is not None and not timer.canceled:
            own_timers += 1
    if len(kernel) != own_timers:
        reasons.append("kernel holds events the fast path cannot model")
    if len(trace) and trace[0].arrival_us < kernel.now_us:
        # The kernel would raise SimTimeError scheduling this arrival;
        # fall back so the error surfaces identically.
        reasons.append("first arrival precedes the kernel clock")
    return FastPathDecision(not reasons, tuple(reasons))
