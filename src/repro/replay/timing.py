"""Timing pass: the kernel's reservation arithmetic over the plan arrays.

This pass is a pure function of the device's current timing state (queue
busy-until, power idle clock, resource frontiers, accumulated busy-time
floats) and the :class:`~repro.replay.planner.ReplayPlan`: it computes
every request's dispatch and finish timestamps plus the final state,
without mutating the device.  The engine applies the outcome afterwards.

Exactness contract
------------------

Floating-point addition is not associative, so this loop re-performs the
kernel's arithmetic *operation by operation* in the same order:

* ``dispatch = max(arrival, busy_until)`` and every
  ``start = max(frontier, earliest)`` are selections -- they introduce no
  new rounding, only choose an existing float -- so carrying frontiers as
  scalars is exact;
* within a request, each op's chain (controller issue -> unit -> channel,
  or controller -> channel -> unit for programs) mirrors
  :meth:`EmmcDevice._schedule` including the order of ``+`` operations;
* busy-time accumulators (``busy_read_us``,
  ``busy_transfer_us += transfer_end - transfer_start``, idle-gap splits)
  are accumulated in the same per-op / per-request order the kernel uses,
  starting from the device's current values.

The POWER_DOWN timer needs no heap: at ``queue_depth=1`` the timer armed
after request *i* fires iff its deadline (``last_activity_end +
threshold``) is *strictly* before the next arrival -- at equal
timestamps the ARRIVAL event's lower priority value wins and the serve
cancels the timer.  A fired timer only flips the low-power flag and its
entry counter; the warm-up charge itself comes from the same
``gap > threshold`` comparison the closed-form model uses.

Why a Python loop and not pure ndarray kernels: the inter-request
recurrences (queue busy-until, per-resource frontiers) are genuine
sequential dependencies -- ``np.maximum.accumulate`` covers the
dispatch column only when service times are known, but service times
depend on resource frontiers shared across requests.  The loop keeps
every chain bit-exact; the derived columns (wait/service/response,
no-wait counts) are vectorized in the engine where element-wise NumPy
arithmetic is bit-identical to the scalar expressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass
class TimingOutcome:
    """Timestamps plus the final device timing state (absolute values)."""

    dispatch_us: List[float]
    finish_us: List[float]

    # AdmissionQueue (depth 1).
    busy_until_us: float
    slot_waits: int

    # PowerModel.
    last_activity_end_us: float
    low_power: bool
    wakeups: int
    mode_switches: int
    low_power_entries: int

    # DeviceStats float accumulators (absolute, already folded in).
    active_idle_us: float
    low_power_us: float
    busy_read_us: float
    busy_program_us: float
    busy_erase_us: float
    busy_transfer_us: float
    erases: int

    # Resource timelines.
    controller_next_free_us: float
    controller_busy_us: float
    controller_reservations: int
    channel_next_free_us: List[float]
    channel_busy_us: List[float]
    channel_reservations: List[int]
    unit_next_free_us: List[float]
    unit_busy_us: List[float]
    unit_reservations: List[int]


def compute_timing(device, plan, arrival_us: np.ndarray) -> TimingOutcome:
    """Run the timing pass; reads device state, never mutates it."""
    latency = device.latency
    ftl_overhead = latency.ftl_overhead_us
    command_overhead = latency.command_overhead_us
    threshold = latency.power_threshold_us
    warmup = latency.warmup_us

    queue = device.queue
    busy_until = queue._busy_until_us
    slot_waits = queue.slot_waits

    power = device.power
    last_end = power._last_activity_end_us
    low_power = power._low_power
    wakeups = power.wakeups
    mode_switches = power.mode_switches
    low_power_entries = power.low_power_entries

    timer = device._power_down_timer
    timer_pending = timer is not None and not timer.canceled
    timer_deadline = timer.time_us if timer_pending else 0.0

    controller = device.controller
    ctrl_free = controller.next_free_us
    ctrl_busy = controller.busy_us
    ctrl_count = controller.reservations
    ch_free = [timeline.next_free_us for timeline in device.channels]
    ch_busy = [timeline.busy_us for timeline in device.channels]
    ch_count = [timeline.reservations for timeline in device.channels]
    unit_free = [timeline.next_free_us for timeline in device.units]
    unit_busy = [timeline.busy_us for timeline in device.units]
    unit_count = [timeline.reservations for timeline in device.units]

    stats = device.stats
    active_idle = stats.active_idle_us
    low_power_us = stats.low_power_us
    busy_read = stats.busy_read_us
    busy_program = stats.busy_program_us
    busy_erase = stats.busy_erase_us
    busy_transfer = stats.busy_transfer_us
    erases = stats.erases

    # One tuple per op: a single index + unpack in the hot loop instead of
    # five list indexings (zip over the .tolist() columns runs in C).
    op_rows = list(
        zip(
            plan.op_kind.tolist(),
            plan.op_unit.tolist(),
            plan.op_unit_us.tolist(),
            plan.op_channel.tolist(),
            plan.op_transfer_us.tolist(),
        )
    )
    req_ops = plan.req_ops.tolist()
    arrivals = arrival_us.tolist()

    dispatch_out: List[float] = []
    finish_out: List[float] = []
    append_dispatch = dispatch_out.append
    append_finish = finish_out.append

    position = 0
    for index, arrival in enumerate(arrivals):
        # POWER_DOWN timer: fires iff strictly before this arrival (an
        # arrival at the deadline wins the tie and cancels it).  Firing
        # only flips the flag/counter; the warm-up charge is gap-based.
        if timer_pending and timer_deadline < arrival and not low_power:
            low_power = True
            low_power_entries += 1

        # AdmissionQueue.admit (depth 1).
        if busy_until > arrival:
            dispatch = busy_until
            slot_waits += 1
        else:
            dispatch = arrival

        # EmmcDevice._account_idle.
        gap = dispatch - last_end
        if gap > 0:
            if gap > threshold:
                active_idle += threshold
                low_power_us += gap - threshold
            else:
                active_idle += gap

        # PowerModel.wake (wakeup_penalty's strict comparison).
        if dispatch - last_end > threshold:
            wakeups += 1
            mode_switches += 2
            start = dispatch + warmup
        else:
            start = dispatch
        low_power = False

        # EmmcDevice._schedule over this request's planned ops.
        boundary = req_ops[index + 1]
        if position == boundary:
            finish = start + command_overhead  # _absorbed_latency, no buffer
        else:
            finish = start
            while position < boundary:
                # Controller reservation: earliest is always the request
                # start (the kernel passes `start` for every op).
                issue_start = ctrl_free if ctrl_free > start else start
                issue = issue_start + ftl_overhead
                ctrl_free = issue
                ctrl_busy += ftl_overhead
                ctrl_count += 1
                kind, unit, unit_duration, channel, transfer = op_rows[position]
                if kind == 1:  # PROGRAM: channel from issue, unit after.
                    t_start = ch_free[channel]
                    if t_start < issue:
                        t_start = issue
                    t_end = t_start + transfer
                    ch_free[channel] = t_end
                    ch_busy[channel] += transfer
                    ch_count[channel] += 1
                    u_start = unit_free[unit]
                    if u_start < t_end:
                        u_start = t_end
                    u_end = u_start + unit_duration
                    unit_free[unit] = u_end
                    unit_busy[unit] += unit_duration
                    unit_count[unit] += 1
                    busy_transfer += t_end - t_start
                    busy_program += unit_duration
                    op_finish = u_end
                elif kind == 0:  # READ: unit from issue, channel after.
                    u_start = unit_free[unit]
                    if u_start < issue:
                        u_start = issue
                    u_end = u_start + unit_duration
                    unit_free[unit] = u_end
                    unit_busy[unit] += unit_duration
                    unit_count[unit] += 1
                    t_start = ch_free[channel]
                    if t_start < u_end:
                        t_start = u_end
                    t_end = t_start + transfer
                    ch_free[channel] = t_end
                    ch_busy[channel] += transfer
                    ch_count[channel] += 1
                    busy_transfer += t_end - t_start
                    busy_read += unit_duration
                    op_finish = t_end
                else:  # ERASE: unit only.
                    u_start = unit_free[unit]
                    if u_start < issue:
                        u_start = issue
                    u_end = u_start + unit_duration
                    unit_free[unit] = u_end
                    unit_busy[unit] += unit_duration
                    unit_count[unit] += 1
                    erases += 1
                    busy_erase += unit_duration
                    op_finish = u_end
                if op_finish > finish:
                    finish = op_finish
                position += 1

        # Post-serve bookkeeping: queue, power, re-armed timer.
        if finish > busy_until:
            busy_until = finish
        if finish > last_end:
            last_end = finish
        timer_pending = True
        timer_deadline = last_end + threshold
        append_dispatch(dispatch)
        append_finish(finish)

    return TimingOutcome(
        dispatch_us=dispatch_out,
        finish_us=finish_out,
        busy_until_us=busy_until,
        slot_waits=slot_waits,
        last_activity_end_us=last_end,
        low_power=low_power,
        wakeups=wakeups,
        mode_switches=mode_switches,
        low_power_entries=low_power_entries,
        active_idle_us=active_idle,
        low_power_us=low_power_us,
        busy_read_us=busy_read,
        busy_program_us=busy_program,
        busy_erase_us=busy_erase,
        busy_transfer_us=busy_transfer,
        erases=erases,
        controller_next_free_us=ctrl_free,
        controller_busy_us=ctrl_busy,
        controller_reservations=ctrl_count,
        channel_next_free_us=ch_free,
        channel_busy_us=ch_busy,
        channel_reservations=ch_count,
        unit_next_free_us=unit_free,
        unit_busy_us=unit_busy,
        unit_reservations=unit_count,
    )
