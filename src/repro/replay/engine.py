"""Fast-path orchestration: plan, time, apply, assemble.

:func:`fast_replay` is the two-pass replacement for
``Host.replay``'s schedule-arrivals-and-drain loop;
:func:`maybe_fast_replay` is the dispatcher ``Host.replay`` consults --
it checks the ``REPRO_REPLAY_FASTPATH`` switch and the preconditions,
and returns ``None`` when the event kernel should run instead.
"""

from __future__ import annotations

import os

import numpy as np

from repro.trace import Request, Trace
from repro.trace.columns import FLAG_HAS_FINISH, FLAG_HAS_SERVICE, TraceColumns

from .planner import plan_trace
from .preconditions import REPLAY_FASTPATH_ENV, decide
from .timing import compute_timing


class FastPathUnavailable(RuntimeError):
    """``REPRO_REPLAY_FASTPATH=require`` but the replay is ineligible."""


#: Timed copies of the (frozen) trace requests are built via ``__new__``
#: plus a ``__dict__`` fill: identical objects to ``Request.with_timing``'s
#: ``dataclasses.replace``, minus the replace machinery and the
#: ``__post_init__`` revalidation -- the timestamps are the timing pass's
#: own ``dispatch >= arrival`` / ``finish >= dispatch`` invariants.
_NEW_REQUEST = Request.__new__

_OFF_MODES = frozenset(("off", "0", "kernel", "false", "no"))
_ON_MODES = frozenset(("auto", "1", "on", "true", "yes"))
_REQUIRE_MODES = frozenset(("require", "force"))


def maybe_fast_replay(device, trace):
    """The dispatcher: a ``ReplayResult`` on the fast path, else ``None``.

    Consults ``$REPRO_REPLAY_FASTPATH`` (``auto``/``off``/``require``;
    see :data:`~repro.replay.preconditions.REPLAY_FASTPATH_ENV`) and the
    structural preconditions.  Any fallback happens *before* the planner
    touches the FTL, so a ``None`` return leaves the device pristine for
    the event kernel.
    """
    mode = os.environ.get(REPLAY_FASTPATH_ENV, "auto").strip().lower() or "auto"
    if mode in _OFF_MODES:
        return None
    if mode not in _ON_MODES and mode not in _REQUIRE_MODES:
        raise ValueError(
            f"unknown {REPLAY_FASTPATH_ENV}={mode!r}: "
            "expected auto, off, or require"
        )
    decision = decide(device, trace)
    if not decision.eligible:
        if mode in _REQUIRE_MODES:
            raise FastPathUnavailable(
                f"{REPLAY_FASTPATH_ENV}={mode} but the fast path is "
                "ineligible: " + "; ".join(decision.reasons)
            )
        return None
    return fast_replay(device, trace)


def fast_replay(device, trace: Trace):
    """Replay ``trace`` on ``device`` via the two-pass engine.

    Callers must have checked :func:`repro.replay.preconditions.decide`
    first; this function assumes eligibility.  On return the device --
    stats, FTL, admission queue, power model, resource timelines, kernel
    clock and re-armed timers -- is in the state a kernel replay would
    have left, except for the kernel's event-counter telemetry
    (``processed``/``scheduled``/``cancellations``/seq numbers), which
    count events that deliberately never existed.
    """
    from repro.emmc.device import ReplayResult  # local: avoids cycle

    requests = trace.requests
    stats = device.stats
    if not requests:
        # Kernel parity: drain() fires nothing, nothing changes.
        return ReplayResult(
            trace=trace.with_requests([]),
            stats=stats,
            config_name=device.config.name,
        )

    columns = trace.columns()
    plan = plan_trace(device, columns)
    outcome = compute_timing(device, plan, columns.arrival_us)

    dispatch_arr = np.array(outcome.dispatch_us, dtype=np.float64)
    finish_arr = np.array(outcome.finish_us, dtype=np.float64)
    # Element-wise subtraction is the same IEEE-754 op the kernel performs
    # per request, so these columns are bit-identical to its appends.
    wait_arr = dispatch_arr - columns.arrival_us
    service_arr = finish_arr - dispatch_arr
    response_arr = finish_arr - columns.arrival_us

    n = len(requests)
    stats.wait_us.extend(wait_arr.tolist())
    stats.service_us.extend(service_arr.tolist())
    stats.response_us.extend(response_arr.tolist())
    stats.requests += n
    stats.no_wait_requests += int(np.count_nonzero(wait_arr <= 1e-9))
    stats.data_bytes_written += plan.data_bytes_written
    stats.flash_bytes_consumed += plan.flash_bytes_consumed
    stats.data_bytes_read += plan.data_bytes_read
    stats.gc_collections += plan.gc_collections
    stats.gc_migrated_slots += plan.gc_migrated_slots
    stats.preloaded_pages += plan.preloaded_pages
    for kind, count in plan.page_reads.items():
        stats.page_reads[kind] = stats.page_reads.get(kind, 0) + count
    for kind, count in plan.page_programs.items():
        stats.page_programs[kind] = stats.page_programs.get(kind, 0) + count
    stats.erases = outcome.erases
    stats.active_idle_us = outcome.active_idle_us
    stats.low_power_us = outcome.low_power_us
    stats.busy_read_us = outcome.busy_read_us
    stats.busy_program_us = outcome.busy_program_us
    stats.busy_erase_us = outcome.busy_erase_us
    stats.busy_transfer_us = outcome.busy_transfer_us
    stats.wakeups = outcome.wakeups

    queue = device.queue
    queue._busy_until_us = outcome.busy_until_us
    queue.dispatches += n
    queue.slot_waits = outcome.slot_waits
    queue.max_in_flight = max(queue.max_in_flight, 1)

    power = device.power
    power._last_activity_end_us = outcome.last_activity_end_us
    power._low_power = outcome.low_power
    power.wakeups = outcome.wakeups
    power.mode_switches = outcome.mode_switches
    power.low_power_entries = outcome.low_power_entries

    controller = device.controller
    controller.next_free_us = outcome.controller_next_free_us
    controller.busy_us = outcome.controller_busy_us
    controller.reservations = outcome.controller_reservations
    for index, timeline in enumerate(device.channels):
        timeline.next_free_us = outcome.channel_next_free_us[index]
        timeline.busy_us = outcome.channel_busy_us[index]
        timeline.reservations = outcome.channel_reservations[index]
    for index, timeline in enumerate(device.units):
        timeline.next_free_us = outcome.unit_next_free_us[index]
        timeline.busy_us = outcome.unit_busy_us[index]
        timeline.reservations = outcome.unit_reservations[index]

    # Kernel end state: the clock sits at the last COMPLETE event (the
    # final finish -- finishes are monotone at depth 1), the arrival-time
    # timers were canceled by their dispatches, and fresh speculative
    # timers armed after the last request are left pending by drain().
    device._cancel_activity_timers()
    device.kernel.clock.advance_to(outcome.finish_us[-1])
    device._arm_activity_timers()

    completed = []
    append = completed.append
    new = _NEW_REQUEST
    for request, dispatch, finish in zip(
        requests, outcome.dispatch_us, outcome.finish_us
    ):
        timed = new(Request)
        fields = timed.__dict__
        fields.update(request.__dict__)
        fields["service_start_us"] = dispatch
        fields["finish_us"] = finish
        append(timed)
    result_trace = trace.with_requests(completed)
    flags = np.full(n, FLAG_HAS_SERVICE | FLAG_HAS_FINISH, dtype=np.uint8)
    result_trace._adopt_columns(
        TraceColumns(
            columns.arrival_us,
            dispatch_arr,
            finish_arr,
            columns.lba,
            columns.size,
            columns.op,
            flags,
        )
    )
    return ReplayResult(
        trace=result_trace, stats=stats, config_name=device.config.name
    )
