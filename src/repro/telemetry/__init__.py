"""Deterministic telemetry: sim-time spans, exact latency decomposition,
Chrome-trace/span-store/flame exports.

Quick start::

    from repro.emmc import EmmcDevice, four_ps
    from repro.sim import Host
    from repro.telemetry import Telemetry, chrome_trace

    sink = Telemetry()
    device = EmmcDevice(four_ps(), telemetry=sink)
    Host(device).replay(trace)
    chrome_trace(sink, "out.json")        # load in chrome://tracing

Disabled mode is structural absence (``telemetry=None``, the default):
no sink, no branches taken on the replay hot path.  Enabling telemetry
never changes a simulation result -- only what gets recorded about it.
See ``docs/telemetry.md`` for the span model and the decomposition
contract.

Environment switch: setting :data:`TELEMETRY_ENV` (``REPRO_TELEMETRY``)
to ``1``/``on`` makes :func:`repro.experiments.common.replay_on` attach
a sink to every experiment device, which is how the digest-parity suite
proves the enabled/disabled bit-identity.
"""

from .chrome import chrome_trace, chrome_trace_events, chrome_trace_json
from .core import (
    C_NAME,
    C_TS,
    C_VALUE,
    E_ARGS,
    E_CAT,
    E_NAME,
    E_TRACK,
    E_TS,
    S_CAT,
    S_DUR,
    S_NAME,
    S_PARENT,
    S_START,
    S_TRACK,
    Telemetry,
    attach_telemetry,
)
from .decomposition import (
    COMPONENTS,
    LatencyDecomposition,
    chain_segments,
    decompose_request,
)
from .flame import flame_summary, span_paths
from .spanstore import (
    SPAN_MANIFEST_NAME,
    SpanChunk,
    SpanStore,
    SpanStoreError,
    open_span_store,
    pack_spans,
)

#: Environment switch: attach a telemetry sink to every experiment
#: replay (see repro.experiments.common.replay_on).
TELEMETRY_ENV = "REPRO_TELEMETRY"

__all__ = [
    "Telemetry",
    "attach_telemetry",
    "COMPONENTS",
    "LatencyDecomposition",
    "decompose_request",
    "chain_segments",
    "chrome_trace",
    "chrome_trace_events",
    "chrome_trace_json",
    "flame_summary",
    "span_paths",
    "pack_spans",
    "open_span_store",
    "SpanStore",
    "SpanChunk",
    "SpanStoreError",
    "SPAN_MANIFEST_NAME",
    "TELEMETRY_ENV",
    "S_NAME", "S_CAT", "S_TRACK", "S_PARENT", "S_START", "S_DUR",
    "E_NAME", "E_CAT", "E_TRACK", "E_TS", "E_ARGS",
    "C_NAME", "C_TS", "C_VALUE",
]
