"""Chunked columnar span table -- ``repro/store``'s layout for spans.

A span store is a directory::

    spans/
      spans.json        # manifest: string tables, chunk index, checksums
      spans-00000.bin   # chunk: 6 columns, column-major, little-endian
      spans-00001.bin

Each chunk holds ``chunk_rows`` spans (the last one fewer) as six
concatenated column arrays: ``parent`` (int64), ``name_id``/``cat_id``/
``track_id`` (uint32 indices into the manifest's string tables), and
``start_us``/``dur_us`` (float64).  Reads memory-map one chunk at a
time, so span analytics over arbitrarily large recordings run out of
core -- the same discipline as :mod:`repro.store` for request traces.

Determinism: string tables are built in first-seen order, the manifest
is serialized with sorted keys and no timestamps, and chunk bytes are a
pure function of the spans -- packing the same recording twice (any
process, any hash seed) produces byte-identical directories.  The
manifest is written last via a temp file + ``os.replace``, so a crashed
pack leaves no store that claims to be complete.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from .core import S_CAT, S_DUR, S_NAME, S_PARENT, S_START, S_TRACK, Telemetry

#: Manifest file name inside a span-store directory.
SPAN_MANIFEST_NAME = "spans.json"

_FORMAT = "repro-span-store"
_VERSION = 1

#: Column order inside a chunk file: (field, dtype).
_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("parent", "<i8"),
    ("name_id", "<u4"),
    ("cat_id", "<u4"),
    ("track_id", "<u4"),
    ("start_us", "<f8"),
    ("dur_us", "<f8"),
)


class SpanStoreError(RuntimeError):
    """A span store is missing, malformed, or fails verification."""


def _intern(value: str, table: Dict[str, int], names: List[str]) -> int:
    index = table.get(value)
    if index is None:
        index = len(names)
        table[value] = index
        names.append(value)
    return index


def pack_spans(
    telemetry: Telemetry,
    path: str,
    chunk_rows: int = 65536,
    overwrite: bool = False,
) -> dict:
    """Write ``telemetry``'s spans as a span store; returns the manifest."""
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be positive")
    manifest_path = os.path.join(path, SPAN_MANIFEST_NAME)
    if os.path.exists(manifest_path) and not overwrite:
        raise SpanStoreError(f"span store already exists at {path!r}")
    os.makedirs(path, exist_ok=True)

    names: List[str] = []
    cats: List[str] = []
    tracks: List[str] = []
    name_table: Dict[str, int] = {}
    cat_table: Dict[str, int] = {}
    track_table: Dict[str, int] = {}

    spans = telemetry.spans
    total = len(spans)
    chunks = []
    for offset in range(0, total, chunk_rows):
        batch = spans[offset : offset + chunk_rows]
        rows = len(batch)
        columns = {
            "parent": np.fromiter(
                (span[S_PARENT] for span in batch), dtype="<i8", count=rows
            ),
            "name_id": np.fromiter(
                (_intern(span[S_NAME], name_table, names) for span in batch),
                dtype="<u4",
                count=rows,
            ),
            "cat_id": np.fromiter(
                (_intern(span[S_CAT], cat_table, cats) for span in batch),
                dtype="<u4",
                count=rows,
            ),
            "track_id": np.fromiter(
                (_intern(span[S_TRACK], track_table, tracks) for span in batch),
                dtype="<u4",
                count=rows,
            ),
            "start_us": np.fromiter(
                (span[S_START] for span in batch), dtype="<f8", count=rows
            ),
            "dur_us": np.fromiter(
                (span[S_DUR] for span in batch), dtype="<f8", count=rows
            ),
        }
        payload = b"".join(columns[field].tobytes() for field, _ in _COLUMNS)
        file_name = f"spans-{len(chunks):05d}.bin"
        with open(os.path.join(path, file_name), "wb") as handle:
            handle.write(payload)
        chunks.append({
            "file": file_name,
            "rows": rows,
            "nbytes": len(payload),
            "sha256": hashlib.sha256(payload).hexdigest(),
        })

    manifest = {
        "format": _FORMAT,
        "version": _VERSION,
        "total_rows": total,
        "chunk_rows": chunk_rows,
        "names": names,
        "cats": cats,
        "tracks": tracks,
        "chunks": chunks,
        "meta": {str(key): str(value) for key, value in telemetry.meta.items()},
    }
    temp_path = manifest_path + ".tmp"
    with open(temp_path, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(temp_path, manifest_path)
    return manifest


@dataclass
class SpanChunk:
    """One memory-mapped chunk of a span store, as column arrays."""

    parent: np.ndarray
    name_id: np.ndarray
    cat_id: np.ndarray
    track_id: np.ndarray
    start_us: np.ndarray
    dur_us: np.ndarray

    def __len__(self) -> int:
        return len(self.parent)


class SpanStore:
    """Read-side handle on a packed span store directory."""

    def __init__(self, path: str) -> None:
        self.path = path
        manifest_path = os.path.join(path, SPAN_MANIFEST_NAME)
        try:
            with open(manifest_path) as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise SpanStoreError(f"no span store at {path!r}") from None
        except json.JSONDecodeError as error:
            raise SpanStoreError(
                f"corrupt span manifest at {manifest_path!r}: {error}"
            ) from None
        if manifest.get("format") != _FORMAT:
            raise SpanStoreError(
                f"{manifest_path!r} is not a span store manifest"
            )
        if manifest.get("version") != _VERSION:
            raise SpanStoreError(
                f"unsupported span store version {manifest.get('version')!r}"
            )
        self.manifest = manifest
        self.names: List[str] = manifest["names"]
        self.cats: List[str] = manifest["cats"]
        self.tracks: List[str] = manifest["tracks"]

    def __len__(self) -> int:
        return self.manifest["total_rows"]

    @property
    def num_chunks(self) -> int:
        return len(self.manifest["chunks"])

    def _chunk_bytes(self, info: dict) -> np.memmap:
        chunk_path = os.path.join(self.path, info["file"])
        try:
            mapped = np.memmap(chunk_path, dtype=np.uint8, mode="r")
        except (FileNotFoundError, ValueError) as error:
            raise SpanStoreError(
                f"unreadable span chunk {info['file']!r}: {error}"
            ) from None
        if mapped.nbytes != info["nbytes"]:
            raise SpanStoreError(
                f"span chunk {info['file']!r} is {mapped.nbytes} bytes, "
                f"manifest says {info['nbytes']}"
            )
        return mapped

    def iter_chunks(self) -> Iterator[SpanChunk]:
        """Yield each chunk's columns, one memory-mapped chunk at a time."""
        for info in self.manifest["chunks"]:
            mapped = self._chunk_bytes(info)
            rows = info["rows"]
            offset = 0
            columns = {}
            for field, dtype in _COLUMNS:
                width = np.dtype(dtype).itemsize * rows
                columns[field] = np.frombuffer(
                    mapped, dtype=dtype, count=rows, offset=offset
                )
                offset += width
            yield SpanChunk(**columns)

    def verify(self) -> None:
        """Re-hash every chunk against the manifest; raises on mismatch."""
        for info in self.manifest["chunks"]:
            digest = hashlib.sha256(self._chunk_bytes(info).tobytes()).hexdigest()
            if digest != info["sha256"]:
                raise SpanStoreError(
                    f"span chunk {info['file']!r} fails its checksum"
                )

    def totals_by_name(self) -> Dict[str, Tuple[int, float]]:
        """Out-of-core ``name -> (count, total_us)`` aggregation."""
        counts = np.zeros(len(self.names), dtype=np.int64)
        totals = np.zeros(len(self.names), dtype=np.float64)
        for chunk in self.iter_chunks():
            counts += np.bincount(chunk.name_id, minlength=len(self.names))
            totals += np.bincount(
                chunk.name_id, weights=chunk.dur_us, minlength=len(self.names)
            )
        return {
            name: (int(counts[index]), float(totals[index]))
            for index, name in enumerate(self.names)
        }


def open_span_store(path: str) -> SpanStore:
    """Open a packed span store directory for reading."""
    return SpanStore(path)
