"""Chrome-trace (Trace Event Format) exporter.

Writes the JSON Array-with-metadata flavour that ``chrome://tracing``
and Perfetto's legacy importer both load directly::

    from repro.telemetry import chrome_trace
    chrome_trace(sink, "out.json")     # then open chrome://tracing -> Load

Mapping:

* every distinct ``track`` becomes a thread (tid) of one process, named
  via ``thread_name`` metadata and ordered by first appearance;
* spans export as complete (``"ph": "X"``) events -- sim time is already
  microseconds, the format's native unit, so timestamps pass through
  untouched;
* span parent links ride in ``args`` (``id``/``parent``), since the
  format has no first-class nesting across tracks;
* kernel events and instant events export as ``"ph": "i"`` instants
  (kernel events on their own ``kernel`` track);
* counters export as ``"ph": "C"`` counter samples.

Output is deterministic: tracks are numbered in first-seen order,
records are emitted in recording order, and the JSON is serialized with
sorted keys and fixed separators -- byte-identical across runs and
``PYTHONHASHSEED`` values whenever the recording itself is.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Union

from .core import (
    C_NAME,
    C_TS,
    C_VALUE,
    E_ARGS,
    E_CAT,
    E_NAME,
    E_TRACK,
    E_TS,
    S_CAT,
    S_DUR,
    S_NAME,
    S_PARENT,
    S_START,
    S_TRACK,
    Telemetry,
)

#: The single process id every track lives under.
_PID = 1


def chrome_trace_events(telemetry: Telemetry) -> List[dict]:
    """The trace's event records, as JSON-ready dicts."""
    tids: Dict[str, int] = {}

    def tid_of(track: str) -> int:
        key = track or "main"
        if key not in tids:
            tids[key] = len(tids) + 1
        return tids[key]

    records: List[dict] = []
    for span_id, span in enumerate(telemetry.spans):
        args = {"id": span_id}
        if span[S_PARENT] >= 0:
            args["parent"] = span[S_PARENT]
        records.append({
            "ph": "X",
            "pid": _PID,
            "tid": tid_of(span[S_TRACK]),
            "name": span[S_NAME],
            "cat": span[S_CAT] or "span",
            "ts": span[S_START],
            "dur": span[S_DUR],
            "args": args,
        })
    for event in telemetry.events:
        record = {
            "ph": "i",
            "s": "t",
            "pid": _PID,
            "tid": tid_of(event[E_TRACK]),
            "name": event[E_NAME],
            "cat": event[E_CAT] or "event",
            "ts": event[E_TS],
        }
        if event[E_ARGS] is not None:
            record["args"] = {"data": event[E_ARGS]}
        records.append(record)
    for time_us, priority, seq, kind, label in telemetry.kernel_events:
        records.append({
            "ph": "i",
            "s": "t",
            "pid": _PID,
            "tid": tid_of("kernel"),
            "name": label or kind,
            "cat": "kernel",
            "ts": time_us,
            "args": {"kind": kind, "priority": priority, "seq": seq},
        })
    for counter in telemetry.counters:
        records.append({
            "ph": "C",
            "pid": _PID,
            "tid": tid_of("counters"),
            "name": counter[C_NAME],
            "ts": counter[C_TS],
            "args": {"value": counter[C_VALUE]},
        })

    metadata: List[dict] = [{
        "ph": "M",
        "pid": _PID,
        "name": "process_name",
        "args": {"name": "repro"},
    }]
    for track, tid in tids.items():
        metadata.append({
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": track},
        })
        metadata.append({
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "name": "thread_sort_index",
            "args": {"sort_index": tid},
        })
    return metadata + records


def chrome_trace_json(telemetry: Telemetry) -> str:
    """The full trace document as a deterministic JSON string."""
    document = {
        "displayTimeUnit": "ms",
        "metadata": dict(telemetry.meta),
        "traceEvents": chrome_trace_events(telemetry),
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def chrome_trace(telemetry: Telemetry, destination: Union[str, IO[str]]) -> None:
    """Write the trace document to a path or text file object."""
    payload = chrome_trace_json(telemetry)
    if hasattr(destination, "write"):
        destination.write(payload)
        destination.write("\n")
        return
    with open(destination, "w") as handle:
        handle.write(payload)
        handle.write("\n")
