"""The telemetry sink: spans, instant events, counters, kernel trace.

A :class:`Telemetry` object is a passive, append-only recorder.  Nothing
in the simulator *reads* it while running -- producers append, exporters
(:mod:`repro.telemetry.chrome`, :mod:`repro.telemetry.flame`,
:mod:`repro.telemetry.spanstore`) walk it afterwards.  Disabled mode is
structural absence: a device built without a sink carries
``telemetry=None`` and the hot path never branches into recording code,
mirroring how an inactive :class:`repro.faults.FaultPlan` is dropped on
the floor at device construction.

Determinism contract
--------------------
Sim-time recording is a pure function of the simulation: span ids are
list indices (assigned in emission order, which is event order), names
are plain strings appended in first-seen order by the exporters, and no
set/dict iteration order leaks in.  Two replays of the same trace --
in the same process, across processes, or across ``PYTHONHASHSEED``
values -- produce byte-identical exports.  Wall-clock spans (the
experiment runner's) are real time and deliberately outside that
contract.

Spans are stored as plain tuples (see the ``S_*`` index constants)
because the enabled-mode budget is tight: one request emits up to a
dozen spans, and a NamedTuple/dataclass per span would double the
recording cost for no analytical gain.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, List, Optional, Tuple

#: Span tuple layout: ``spans[i] == (name, cat, track, parent, start, dur)``
#: and the span's id *is* its index ``i``.  ``parent`` is another span's
#: id, or -1 for a root.
S_NAME, S_CAT, S_TRACK, S_PARENT, S_START, S_DUR = range(6)

#: Instant-event tuple layout: ``(name, cat, track, ts_us, args)``.
E_NAME, E_CAT, E_TRACK, E_TS, E_ARGS = range(5)

#: Counter-sample tuple layout: ``(name, ts_us, value)``.
C_NAME, C_TS, C_VALUE = range(3)

#: A recorded kernel event: (time_us, priority, seq, kind name, label) --
#: the exact shape the old ``EventLoop.event_trace`` list held, kept so
#: the ``record_events`` compatibility shim is a view, not a copy.
KernelEvent = Tuple[float, int, int, str, str]


class Telemetry:
    """Append-only span/event/counter sink for one simulation or run."""

    __slots__ = (
        "spans",
        "events",
        "counters",
        "kernel_events",
        "decompositions",
        "meta",
    )

    def __init__(self) -> None:
        #: Completed spans, id == index (see ``S_*`` constants).
        self.spans: List[Tuple[str, str, str, int, float, float]] = []
        #: Instant events (see ``E_*`` constants).
        self.events: List[Tuple[str, str, str, float, Any]] = []
        #: Counter samples (see ``C_*`` constants).
        self.counters: List[Tuple[str, float, float]] = []
        #: Every event the kernel fired, in fire order (``KernelEvent``).
        self.kernel_events: List[KernelEvent] = []
        #: One :class:`~repro.telemetry.decomposition.LatencyDecomposition`
        #: per served request, in service (arrival-event) order.
        self.decompositions: List[Any] = []
        #: Free-form run metadata carried into exports (insertion-ordered).
        self.meta: dict = {}

    # -- recording ---------------------------------------------------------

    def add_span(
        self,
        name: str,
        start_us: float,
        dur_us: float,
        cat: str = "",
        track: str = "",
        parent: int = -1,
    ) -> int:
        """Record a completed span; returns its id (for child spans)."""
        spans = self.spans
        span_id = len(spans)
        spans.append((name, cat, track, parent, start_us, dur_us))
        return span_id

    def add_event(
        self,
        name: str,
        ts_us: float,
        cat: str = "",
        track: str = "",
        args: Any = None,
    ) -> None:
        """Record an instant (zero-duration) event."""
        self.events.append((name, cat, track, ts_us, args))

    def add_counter(self, name: str, ts_us: float, value: float) -> None:
        """Record one sample of a named counter series."""
        self.counters.append((name, ts_us, value))

    # -- wall-clock spans (experiment runner) ------------------------------

    @contextmanager
    def wall_span(
        self,
        name: str,
        cat: str = "wall",
        track: str = "main",
        parent: int = -1,
        origin_s: float = 0.0,
    ):
        """Measure a wall-clock span around a ``with`` body.

        Timestamps are ``time.perf_counter()`` seconds relative to
        ``origin_s``, stored in microseconds so wall spans share the
        exporters with sim-time spans.  Yields a mutable one-slot list
        whose final value is the span id (assigned at exit, when the
        span is complete and its duration known).
        """
        box = [-1]
        started = time.perf_counter()
        try:
            yield box
        finally:
            ended = time.perf_counter()
            box[0] = self.add_span(
                name,
                (started - origin_s) * 1e6,
                (ended - started) * 1e6,
                cat=cat,
                track=track,
                parent=parent,
            )

    def add_wall_span(
        self,
        name: str,
        started_s: float,
        ended_s: float,
        cat: str = "wall",
        track: str = "main",
        parent: int = -1,
        origin_s: float = 0.0,
    ) -> int:
        """Record a wall span from raw ``perf_counter`` endpoints.

        Used for spans measured in worker processes:
        ``time.perf_counter`` is CLOCK_MONOTONIC on Linux, a system-wide
        clock, so endpoints taken in a forked worker are directly
        comparable with the parent's origin.
        """
        return self.add_span(
            name,
            (started_s - origin_s) * 1e6,
            (ended_s - started_s) * 1e6,
            cat=cat,
            track=track,
            parent=parent,
        )

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def children_of(self, span_id: int) -> List[int]:
        """Ids of the spans whose parent is ``span_id`` (emission order)."""
        return [
            index
            for index, span in enumerate(self.spans)
            if span[S_PARENT] == span_id
        ]

    def spans_named(self, name: str) -> List[int]:
        """Ids of every span called ``name`` (emission order)."""
        return [
            index
            for index, span in enumerate(self.spans)
            if span[S_NAME] == name
        ]

    def clear(self) -> None:
        """Drop everything recorded so far (metadata included)."""
        del self.spans[:]
        del self.events[:]
        del self.counters[:]
        del self.kernel_events[:]
        del self.decompositions[:]
        self.meta.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Telemetry(spans={len(self.spans)}, events={len(self.events)}, "
            f"kernel_events={len(self.kernel_events)})"
        )


def attach_telemetry(device, sink: Optional[Telemetry] = None) -> Telemetry:
    """Attach a sink to an existing device (and its kernel); returns it.

    Convenience for tests and the CLI: ``EmmcDevice(config,
    telemetry=Telemetry())`` is the normal construction path, but a
    device built elsewhere can opt in after the fact as long as it has
    not served anything yet.
    """
    if sink is None:
        sink = Telemetry()
    if device.stats.requests:
        raise ValueError(
            "cannot attach telemetry to a device that already served "
            f"{device.stats.requests} requests (spans would be incomplete)"
        )
    device.telemetry = sink
    device.kernel.telemetry = sink
    device.kernel._auto_sink = False
    attach = getattr(device.ftl, "attach_telemetry", None)
    if attach is not None:
        attach(sink, device.kernel.clock)
    return sink
