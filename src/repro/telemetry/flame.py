"""Text flame summary: aggregate span time by parent-chain path.

A terminal-friendly complement to the Chrome trace: each line is one
distinct span *path* (names joined along parent links, root first) with
its cumulative time, count, and share of the root total.  Sorted by
cumulative time within each root so the hot paths read top-down::

    flame: 2 roots, 5 paths, 1234.0us total root time
    write                           1000.0us   55.0%  x 2
      write;queue-wait               200.0us   11.0%  x 1
    ...

Deterministic: paths aggregate into insertion-ordered dicts keyed by
first appearance, ties break on that order, and nothing depends on hash
iteration.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .core import S_DUR, S_NAME, S_PARENT, Telemetry


def span_paths(telemetry: Telemetry) -> Dict[Tuple[str, ...], Tuple[int, float]]:
    """Aggregate ``path -> (count, total_us)`` over every span.

    A span's path is its parent chain's names, root first.  Parents are
    always recorded before children (ids are emission-ordered), so one
    forward pass resolves every chain.
    """
    paths: List[Tuple[str, ...]] = []
    totals: Dict[Tuple[str, ...], List[float]] = {}
    by_id: List[Tuple[str, ...]] = []
    for span in telemetry.spans:
        parent = span[S_PARENT]
        prefix = by_id[parent] if parent >= 0 else ()
        path = prefix + (span[S_NAME],)
        by_id.append(path)
        if path not in totals:
            totals[path] = [0, 0.0]
            paths.append(path)
        entry = totals[path]
        entry[0] += 1
        entry[1] += span[S_DUR]
    return {path: (totals[path][0], totals[path][1]) for path in paths}


def flame_summary(telemetry: Telemetry, max_paths: int = 40) -> str:
    """Render the aggregated paths as an indented text summary."""
    aggregated = span_paths(telemetry)
    if not aggregated:
        return "flame: no spans recorded"
    root_total = sum(
        total for path, (_, total) in aggregated.items() if len(path) == 1
    )
    # Order: depth-first under each root, heaviest subtree first; stable
    # on first-appearance for exact ties.
    order = list(aggregated)
    order.sort(key=lambda path: (path[:1], -aggregated[path][1], path))
    lines = [
        f"flame: {sum(1 for p in aggregated if len(p) == 1)} roots, "
        f"{len(aggregated)} paths, {root_total:.1f}us total root time"
    ]
    width = max(len(";".join(path)) + 2 * (len(path) - 1) for path in order)
    for path in order[:max_paths]:
        count, total = aggregated[path]
        share = (total / root_total * 100.0) if root_total > 0 else 0.0
        label = "  " * (len(path) - 1) + ";".join(path)
        lines.append(
            f"{label:<{width}}  {total:>14.1f}us  {share:>5.1f}%  x {count}"
        )
    if len(order) > max_paths:
        lines.append(f"... {len(order) - max_paths} more paths")
    return "\n".join(lines)
