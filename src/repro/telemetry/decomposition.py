"""Exact per-request latency decomposition.

Every served request's response time splits into seven components::

    queue       admission wait (arrival -> dispatch)
    wake        low-power warm-up (dispatch -> first op may start)
    controller  FTL/command processing: the serialized controller resource
    channel     bus transfers (data in/out) on the critical path
    unit        die/plane cell operations (read sense, program, erase)
    gc          foreground garbage-collection ops on the critical path
    retry       ECC-retry backoff gaps

The contract -- enforced by ``tests/telemetry/test_decomposition.py``
over every app trace -- is *float-exactness*: summing the components
left-to-right in the decomposition's ``order`` reproduces the request's
recorded ``response_us`` bit for bit.

Why that needs care: response time is one subtraction
(``finish - arrival``) while the components telescope through every
intermediate timestamp, and IEEE-754 addition does not telescope --
``(b - a) + (f - b)`` is generally not ``f - a``.  The residual is a few
ulps, but "a few ulps" and "bit-identical" cannot coexist.  So the
decomposition is *closed*: after attributing every critical-path segment
to its component, :func:`_close` nudges the **final** component (the one
owning the last critical-path leg, placed last in ``order``) by the
rounding residual until the ordered sum lands exactly on
``response_us``.  The adjustment is bounded by a few ulps of the
response time -- nanoseconds against microsecond-scale components --
and converges in one or two iterations (an assertion guards the theory).

The input is the list of per-op *legs* the device's ``_schedule``
records while reserving resource windows (see the ``L_*`` layout
below); the decomposition walks the **critical op** -- the one whose
finish is the request's finish -- and attributes each wait/busy window
along its chain.  At ``queue_depth=1`` each window's cause is the named
resource itself; at higher depths a wait may be induced by another
in-flight request, and it is still charged to the resource being waited
on (that is what a timeline decomposition means).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

#: Component names, in canonical (report) order.
COMPONENTS = ("queue", "wake", "controller", "channel", "unit", "gc", "retry")

#: Leg tuple layout, one per flash op, recorded by
#: ``EmmcDevice._schedule``:
#: ``(gc, code, die, channel_index, issue_start, issue, unit_window,
#: transfer_window, retry_windows, op_finish)`` where the windows are
#: ``(start, end)`` pairs (``transfer_window`` is ``None`` for copyback
#: and uncorrectable reads, erases, and copyback programs) and
#: ``retry_windows`` is a tuple of the ECC-retry re-read windows.
(
    L_GC,
    L_CODE,
    L_DIE,
    L_CHANNEL,
    L_ISSUE_START,
    L_ISSUE,
    L_UNIT,
    L_XFER,
    L_RETRIES,
    L_FINISH,
) = range(10)

#: ``L_CODE`` values (match ``FlashOpType`` semantics without importing it).
OP_READ, OP_PROGRAM, OP_ERASE = 0, 1, 2


class LatencyDecomposition:
    """One request's response time, split into exact components."""

    __slots__ = ("arrival_us", "dispatch_us", "start_us", "finish_us",
                 "order", "components")

    def __init__(
        self,
        arrival_us: float,
        dispatch_us: float,
        start_us: float,
        finish_us: float,
        order: Tuple[str, ...],
        components: dict,
    ) -> None:
        self.arrival_us = arrival_us
        self.dispatch_us = dispatch_us
        self.start_us = start_us
        self.finish_us = finish_us
        #: Summation order; ``total()`` must be accumulated exactly in
        #: this order for the bit-exactness contract to hold.
        self.order = order
        self.components = components

    @property
    def response_us(self) -> float:
        """The recorded response time (the same single subtraction the
        device appends to ``DeviceStats.response_us``)."""
        return self.finish_us - self.arrival_us

    def total(self) -> float:
        """Left-to-right sum of the components in ``order``.

        Bit-identical to :attr:`response_us` by construction.
        """
        acc = 0.0
        components = self.components
        for name in self.order:
            acc += components[name]
        return acc

    def as_dict(self) -> dict:
        """Components keyed by name, in canonical order."""
        return {name: self.components[name] for name in COMPONENTS}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{name}={self.components[name]:.3f}" for name in COMPONENTS
        )
        return f"LatencyDecomposition({parts})"


def chain_segments(
    start: float, leg: Sequence
) -> List[Tuple[str, float, float]]:
    """The critical op's contiguous ``(component, begin, end)`` chain.

    Segments partition ``[start, op_finish]`` exactly: each one's begin
    is the previous one's end, with zero-length placeholders where a
    resource was immediately free.  GC-flagged ops charge every segment
    to ``gc`` except retry backoffs, which stay ``retry`` (an ECC stall
    is an ECC stall, whoever issued the read).
    """
    gc_flag = leg[L_GC]
    code = leg[L_CODE]
    issue_start = leg[L_ISSUE_START]
    issue = leg[L_ISSUE]

    def cat(component: str) -> str:
        return "gc" if gc_flag else component

    segments: List[Tuple[str, float, float]] = [
        (cat("controller"), start, issue_start),
        (cat("controller"), issue_start, issue),
    ]
    prev = issue
    transfer = leg[L_XFER]
    if code == OP_PROGRAM and transfer is not None:
        t0, t1 = transfer
        segments.append((cat("channel"), prev, t0))
        segments.append((cat("channel"), t0, t1))
        prev = t1
    u0, u1 = leg[L_UNIT]
    segments.append((cat("unit"), prev, u0))
    segments.append((cat("unit"), u0, u1))
    prev = u1
    for r0, r1 in leg[L_RETRIES]:
        segments.append(("retry", prev, r0))
        segments.append((cat("unit"), r0, r1))
        prev = r1
    if code == OP_READ and transfer is not None:
        t0, t1 = transfer
        segments.append((cat("channel"), prev, t0))
        segments.append((cat("channel"), t0, t1))
    return segments


def decompose_request(
    arrival: float,
    dispatch: float,
    start: float,
    finish: float,
    legs: Optional[Sequence[Sequence]],
) -> LatencyDecomposition:
    """Decompose one request from its timestamps and recorded legs.

    ``legs`` may be ``None``/empty for requests that expanded to no
    flash ops (RAM-buffer absorption, command-overhead-only reads);
    their post-wake latency is all controller time.
    """
    components = {name: 0.0 for name in COMPONENTS}
    components["queue"] = dispatch - arrival
    components["wake"] = start - dispatch
    final = "controller"
    if legs:
        critical = None
        for leg in legs:
            if leg[L_FINISH] == finish:
                critical = leg
                break
        if critical is None:  # pragma: no cover - zero-duration chains only
            critical = legs[-1]
        segments = chain_segments(start, critical)
        for component, begin, end in segments:
            components[component] += end - begin
        final = segments[-1][0]
    else:
        components["controller"] += finish - start
    # The component owning the final critical-path leg sums last, so the
    # closure's ulp-scale residual lands on the largest natural term.
    order = ("queue", "wake") + tuple(
        name for name in COMPONENTS[2:] if name != final
    ) + (final,)
    decomposition = LatencyDecomposition(
        arrival, dispatch, start, finish, order, components
    )
    _close(decomposition)
    return decomposition


def _close(decomposition: LatencyDecomposition) -> None:
    """Nudge the final component until the ordered sum is bit-exact.

    Solves ``fl(acc + x) == response`` for the final component ``x``.
    Residual correction (``x += response - fl(acc + x)``) usually lands
    in one step, but round-to-nearest can leave it oscillating between
    the two neighbours of the target, so the fallback walks ``x`` one
    ulp at a time toward the target: ``fl(acc + x)`` is monotone in
    ``x`` and (with ``x`` no larger in magnitude than the total) steps
    through every representable value, so the walk must land.  Both
    phases move ``x`` by at most a few ulps of the response time --
    sub-picosecond against microsecond-scale components.
    """
    response = decomposition.finish_us - decomposition.arrival_us
    components = decomposition.components
    order = decomposition.order
    acc = 0.0
    for name in order[:-1]:
        acc += components[name]
    last = order[-1]
    value = components[last]
    for _ in range(4):
        total = acc + value
        if total == response:
            components[last] = value
            return
        value += response - total
    for _ in range(64):
        total = acc + value
        if total == response:
            components[last] = value
            return
        value = math.nextafter(
            value, math.inf if total < response else -math.inf
        )
    raise AssertionError(
        f"decomposition closure failed to converge: acc={acc!r} "
        f"response={response!r} last={last}={value!r}"
    )
