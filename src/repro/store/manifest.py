"""The JSON manifest of a chunked trace store.

The manifest is the only structured file in a store directory; every
chunk file is raw column bytes described here.  It records

* identity: trace ``name`` and free-form string ``metadata`` (the same
  pair a :class:`~repro.trace.Trace` carries, so store round-trips are
  lossless);
* the dtype schema (column name -> little-endian dtype string), pinned
  at write time so readers can reject incompatible layouts;
* one entry per chunk: file name, row count, min/max ``arrival_us``
  (range-pruning index), byte size and SHA-256 content checksum;
* ``arrival_sorted``: whether the concatenated stream is globally
  non-decreasing in arrival time (always true for generated/replayed
  traces; possibly false for raw ``blkparse`` imports, which complete
  out of arrival order).

Manifests are written atomically (temp file + ``os.replace``) and are
deterministic -- no timestamps -- so packing the same trace twice yields
byte-identical stores, which the test suite exploits.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .format import (
    CHUNK_COLUMNS,
    JOURNAL_FORMAT,
    JOURNAL_NAME,
    MANIFEST_NAME,
    STORE_FORMAT,
    STORE_VERSION,
    chunk_nbytes,
    schema_as_json,
)


class StoreError(RuntimeError):
    """A trace store directory is missing, malformed or corrupt."""


@dataclass(frozen=True)
class ChunkInfo:
    """Index entry for one chunk file."""

    file: str
    rows: int
    min_arrival_us: float
    max_arrival_us: float
    sha256: str
    nbytes: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "rows": self.rows,
            "min_arrival_us": self.min_arrival_us,
            "max_arrival_us": self.max_arrival_us,
            "sha256": self.sha256,
            "nbytes": self.nbytes,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "ChunkInfo":
        try:
            return cls(
                file=str(raw["file"]),
                rows=int(raw["rows"]),  # type: ignore[arg-type]
                min_arrival_us=float(raw["min_arrival_us"]),  # type: ignore[arg-type]
                max_arrival_us=float(raw["max_arrival_us"]),  # type: ignore[arg-type]
                sha256=str(raw["sha256"]),
                nbytes=int(raw["nbytes"]),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as error:
            raise StoreError(f"malformed chunk entry in manifest: {raw!r}") from error


@dataclass
class StoreManifest:
    """Everything a reader needs to interpret the chunk files."""

    name: str
    metadata: Dict[str, str] = field(default_factory=dict)
    chunks: List[ChunkInfo] = field(default_factory=list)
    arrival_sorted: bool = True

    @property
    def total_rows(self) -> int:
        """Requests across every chunk."""
        return sum(chunk.rows for chunk in self.chunks)

    @property
    def total_nbytes(self) -> int:
        """Payload bytes across every chunk file."""
        return sum(chunk.nbytes for chunk in self.chunks)

    def as_dict(self) -> Dict[str, object]:
        return {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "name": self.name,
            "metadata": dict(self.metadata),
            "columns": schema_as_json(),
            "arrival_sorted": self.arrival_sorted,
            "total_rows": self.total_rows,
            "chunks": [chunk.as_dict() for chunk in self.chunks],
        }

    def dumps(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "StoreManifest":
        if raw.get("format") != STORE_FORMAT:
            raise StoreError(f"not a trace store manifest: format={raw.get('format')!r}")
        version = raw.get("version")
        if version != STORE_VERSION:
            raise StoreError(
                f"unsupported store version {version!r} (reader supports {STORE_VERSION})"
            )
        columns = raw.get("columns")
        if columns != schema_as_json():
            raise StoreError(
                f"incompatible column schema {columns!r}; expected {schema_as_json()!r}"
            )
        metadata_raw = raw.get("metadata") or {}
        if not isinstance(metadata_raw, dict):
            raise StoreError("manifest metadata must be an object")
        manifest = cls(
            name=str(raw.get("name", "trace")),
            metadata={str(k): str(v) for k, v in metadata_raw.items()},
            chunks=[ChunkInfo.from_dict(entry) for entry in raw.get("chunks", [])],  # type: ignore[union-attr]
            arrival_sorted=bool(raw.get("arrival_sorted", True)),
        )
        declared = raw.get("total_rows")
        if declared is not None and int(declared) != manifest.total_rows:  # type: ignore[arg-type]
            raise StoreError(
                f"manifest total_rows={declared} disagrees with chunk sum "
                f"{manifest.total_rows}"
            )
        for chunk in manifest.chunks:
            if chunk.nbytes != chunk_nbytes(chunk.rows):
                raise StoreError(
                    f"chunk {chunk.file}: {chunk.nbytes} bytes inconsistent with "
                    f"{chunk.rows} rows x {len(CHUNK_COLUMNS)} columns"
                )
        return manifest


@dataclass
class StoreJournal:
    """The writer's crash journal: everything flushed so far.

    Re-written atomically after every chunk flush and deleted on a clean
    ``close()``, so its presence (without a manifest) marks a store whose
    writer died mid-stream.  The journaled chunks were fully written and
    checksummed *before* the journal entry, so repair can trust them
    after re-hashing; any chunk file beyond the journal is a torn tail.
    """

    name: str
    metadata: Dict[str, str] = field(default_factory=dict)
    chunk_rows: int = 0
    chunks: List[ChunkInfo] = field(default_factory=list)
    arrival_sorted: bool = True

    @property
    def total_rows(self) -> int:
        """Rows across every journaled (durable) chunk."""
        return sum(chunk.rows for chunk in self.chunks)

    def as_dict(self) -> Dict[str, object]:
        return {
            "format": JOURNAL_FORMAT,
            "version": STORE_VERSION,
            "name": self.name,
            "metadata": dict(self.metadata),
            "columns": schema_as_json(),
            "chunk_rows": self.chunk_rows,
            "arrival_sorted": self.arrival_sorted,
            "chunks": [chunk.as_dict() for chunk in self.chunks],
        }

    def dumps(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "StoreJournal":
        if raw.get("format") != JOURNAL_FORMAT:
            raise StoreError(f"not a store journal: format={raw.get('format')!r}")
        if raw.get("version") != STORE_VERSION:
            raise StoreError(f"unsupported journal version {raw.get('version')!r}")
        if raw.get("columns") != schema_as_json():
            raise StoreError("journal column schema does not match this reader")
        metadata_raw = raw.get("metadata") or {}
        if not isinstance(metadata_raw, dict):
            raise StoreError("journal metadata must be an object")
        return cls(
            name=str(raw.get("name", "trace")),
            metadata={str(k): str(v) for k, v in metadata_raw.items()},
            chunk_rows=int(raw.get("chunk_rows", 0)),  # type: ignore[arg-type]
            chunks=[ChunkInfo.from_dict(entry) for entry in raw.get("chunks", [])],  # type: ignore[union-attr]
            arrival_sorted=bool(raw.get("arrival_sorted", True)),
        )


def journal_path(store_dir: Union[str, Path]) -> Path:
    """Path of the crash journal inside ``store_dir``."""
    return Path(store_dir) / JOURNAL_NAME


def write_journal(store_dir: Union[str, Path], journal: StoreJournal) -> Path:
    """Atomically write the crash journal (temp + rename)."""
    path = journal_path(store_dir)
    temp = path.with_suffix(".json.tmp")
    temp.write_text(journal.dumps())
    os.replace(temp, path)
    return path


def read_journal(store_dir: Union[str, Path]) -> StoreJournal:
    """Load and validate the crash journal of ``store_dir``."""
    path = journal_path(store_dir)
    if not path.is_file():
        raise StoreError(f"no store journal at {store_dir!s} (missing {JOURNAL_NAME})")
    try:
        raw = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise StoreError(f"corrupt journal at {path!s}: {error}") from error
    if not isinstance(raw, dict):
        raise StoreError(f"corrupt journal at {path!s}: not a JSON object")
    return StoreJournal.from_dict(raw)


def manifest_path(store_dir: Union[str, Path]) -> Path:
    """Path of the manifest file inside ``store_dir``."""
    return Path(store_dir) / MANIFEST_NAME


def write_manifest(store_dir: Union[str, Path], manifest: StoreManifest) -> Path:
    """Atomically write ``manifest`` into ``store_dir`` (temp + rename)."""
    path = manifest_path(store_dir)
    temp = path.with_suffix(".json.tmp")
    temp.write_text(manifest.dumps())
    os.replace(temp, path)
    return path


def read_manifest(store_dir: Union[str, Path]) -> StoreManifest:
    """Load and validate the manifest of ``store_dir``."""
    path = manifest_path(store_dir)
    if not path.is_file():
        raise StoreError(f"no trace store at {store_dir!s} (missing {MANIFEST_NAME})")
    try:
        raw = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise StoreError(f"corrupt manifest at {path!s}: {error}") from error
    if not isinstance(raw, dict):
        raise StoreError(f"corrupt manifest at {path!s}: not a JSON object")
    manifest = StoreManifest.from_dict(raw)
    missing: Optional[str] = None
    for chunk in manifest.chunks:
        if not (Path(store_dir) / chunk.file).is_file():
            missing = chunk.file
            break
    if missing is not None:
        raise StoreError(f"store at {store_dir!s} is missing chunk file {missing}")
    return manifest
