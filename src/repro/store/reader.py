"""Memory-mapped reader for chunked columnar trace stores.

:class:`TraceStore` never loads the whole trace: each chunk file is
:func:`numpy.memmap`-ed lazily on access, so touching one column of one
chunk faults in only those pages.  The reading surface:

* :meth:`TraceStore.chunk` -- one stored chunk as zero-copy
  :class:`~repro.trace.TraceColumns` over the memmaps;
* :meth:`TraceStore.iter_chunks` -- the stream, optionally re-chunked to
  any ``chunk_rows`` (crossing pieces are concatenated, so memory stays
  bounded by one output chunk);
* :meth:`TraceStore.select_arrival_range` / :meth:`TraceStore.where` --
  range and mask selection; the range form consults the manifest's
  per-chunk arrival min/max and never opens non-overlapping chunks;
* :meth:`TraceStore.to_trace` -- the materializing escape hatch back to
  a full in-memory :class:`~repro.trace.Trace`.

Memmap lifetime caveat: the arrays returned by :meth:`chunk` (and, for
single-chunk pieces, :meth:`iter_chunks`) keep their backing file mapped
for as long as the arrays live.  Deleting or rewriting a store directory
while views of it are alive is undefined behaviour -- copy first
(``np.array(column)``) if the store may go away.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.trace import Trace, TraceColumns

from .format import CHUNK_COLUMNS, COLUMN_DTYPES, column_offsets
from .manifest import ChunkInfo, StoreError, StoreManifest, read_manifest
from .writer import concat_columns


@dataclass(frozen=True)
class BadChunk:
    """One chunk file that failed verification."""

    file: str
    #: Why: ``"missing"`` (file gone), ``"truncated"`` (short file, a torn
    #: write), or ``"corrupt"`` (right size, wrong checksum -- bit rot).
    reason: str
    expected_nbytes: int
    actual_nbytes: int

    def describe(self) -> str:
        """One-line human summary."""
        if self.reason == "missing":
            return f"{self.file}: missing"
        if self.reason == "truncated":
            return (
                f"{self.file}: truncated ({self.actual_nbytes} of "
                f"{self.expected_nbytes} bytes)"
            )
        return f"{self.file}: checksum mismatch"


@dataclass
class StoreVerifyResult:
    """Outcome of re-hashing every chunk against the manifest."""

    chunks_checked: int = 0
    bytes_verified: int = 0
    bad_chunks: List[BadChunk] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every chunk matched its recorded checksum and size."""
        return not self.bad_chunks

    def describe(self) -> str:
        """One-line human summary for the CLI."""
        if self.ok:
            return (
                f"ok: {self.chunks_checked} chunks, "
                f"{self.bytes_verified} bytes verified"
            )
        problems = "; ".join(bad.describe() for bad in self.bad_chunks)
        return f"FAILED ({len(self.bad_chunks)} of {self.chunks_checked} chunks): {problems}"


def verify_chunk_file(
    store_dir: Union[str, Path], info: ChunkInfo
) -> Optional[BadChunk]:
    """Check one chunk file against its index entry; ``None`` when sound.

    Shared by :meth:`TraceStore.verify` and :func:`repro.store.repair.repair`
    (which also verifies against journal entries, before a manifest exists).
    """
    path = Path(store_dir) / info.file
    if not path.is_file():
        return BadChunk(info.file, "missing", info.nbytes, 0)
    digest = hashlib.sha256()
    read = 0
    with open(path, "rb") as handle:
        while True:
            block = handle.read(1 << 20)
            if not block:
                break
            digest.update(block)
            read += len(block)
    if read != info.nbytes:
        return BadChunk(info.file, "truncated", info.nbytes, read)
    if digest.hexdigest() != info.sha256:
        return BadChunk(info.file, "corrupt", info.nbytes, read)
    return None


class TraceStore:
    """One opened chunked trace store directory (read-only)."""

    def __init__(self, path: Union[str, Path], manifest: StoreManifest) -> None:
        self.path = Path(path)
        self.manifest = manifest
        #: How many chunk files have actually been opened (tests use this
        #: to assert that range pruning skips non-overlapping chunks).
        self.chunks_opened = 0

    # -- identity -------------------------------------------------------------

    @property
    def name(self) -> str:
        """Trace name recorded in the manifest."""
        return self.manifest.name

    @property
    def metadata(self) -> dict:
        """Trace metadata recorded in the manifest."""
        return dict(self.manifest.metadata)

    @property
    def num_chunks(self) -> int:
        """Number of chunk files."""
        return len(self.manifest.chunks)

    @property
    def arrival_sorted(self) -> bool:
        """True when the stream is globally non-decreasing in arrival."""
        return self.manifest.arrival_sorted

    def __len__(self) -> int:
        return self.manifest.total_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceStore({str(self.path)!r}, rows={len(self)}, "
            f"chunks={self.num_chunks})"
        )

    # -- chunk access ---------------------------------------------------------

    def chunk(self, index: int) -> TraceColumns:
        """The ``index``-th stored chunk as zero-copy memmap columns."""
        info = self.manifest.chunks[index]
        path = self.path / info.file
        offsets = column_offsets(info.rows)
        arrays = {}
        for column in CHUNK_COLUMNS:
            arrays[column] = np.memmap(
                path,
                dtype=np.dtype(COLUMN_DTYPES[column]),
                mode="r",
                offset=offsets[column],
                shape=(info.rows,),
            )
        self.chunks_opened += 1
        return TraceColumns(**arrays)

    def iter_chunks(self, chunk_rows: Optional[int] = None) -> Iterator[TraceColumns]:
        """Iterate the stream as column batches.

        ``chunk_rows=None`` yields the stored chunks as-is (zero-copy).
        An explicit ``chunk_rows`` re-chunks: every yielded batch has
        exactly ``chunk_rows`` rows except possibly the last.  Batches
        that cross stored-chunk boundaries are concatenated (a copy
        bounded by one output chunk); batches inside one stored chunk
        are zero-copy views.
        """
        if chunk_rows is None:
            for index in range(self.num_chunks):
                yield self.chunk(index)
            return
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        pending: List[TraceColumns] = []
        pending_rows = 0
        for index in range(self.num_chunks):
            piece = self.chunk(index)
            position = 0
            rows = len(piece)
            while position < rows:
                take = min(rows - position, chunk_rows - pending_rows)
                pending.append(piece.select(slice(position, position + take)))
                pending_rows += take
                position += take
                if pending_rows == chunk_rows:
                    yield concat_columns(pending)
                    pending = []
                    pending_rows = 0
        if pending_rows:
            yield concat_columns(pending)

    def columns(self) -> TraceColumns:
        """Every chunk concatenated into one in-memory column set."""
        return concat_columns([self.chunk(i) for i in range(self.num_chunks)])

    # -- selection ------------------------------------------------------------

    def chunks_overlapping(self, start_us: float, end_us: float) -> List[int]:
        """Indices of chunks whose arrival span intersects ``[start, end)``.

        Pure manifest arithmetic -- no chunk file is opened.  Valid for
        unsorted stores too: per-chunk min/max are computed from the
        data, not assumed from ordering.
        """
        return [
            index
            for index, info in enumerate(self.manifest.chunks)
            if info.max_arrival_us >= start_us and info.min_arrival_us < end_us
        ]

    def select_arrival_range(self, start_us: float, end_us: float) -> TraceColumns:
        """Rows with ``start_us <= arrival_us < end_us``, pruned by chunk.

        Only chunks whose manifest min/max span intersects the range are
        opened; within each, a boolean mask selects the exact rows.
        """
        pieces: List[TraceColumns] = []
        for index in self.chunks_overlapping(start_us, end_us):
            piece = self.chunk(index)
            arrivals = piece.arrival_us
            mask = (arrivals >= start_us) & (arrivals < end_us)
            if mask.all():
                pieces.append(piece)
            elif mask.any():
                pieces.append(piece.select(mask))
        return concat_columns(pieces)

    def where(self, predicate: Callable[[TraceColumns], np.ndarray]) -> TraceColumns:
        """Rows for which ``predicate(chunk)`` is true, one chunk at a time.

        ``predicate`` receives each chunk's columns and returns a boolean
        mask of its length; memory stays bounded by the matching rows.
        """
        pieces: List[TraceColumns] = []
        for index in range(self.num_chunks):
            piece = self.chunk(index)
            mask = np.asarray(predicate(piece), dtype=bool)
            if mask.shape != (len(piece),):
                raise ValueError("predicate mask does not match chunk length")
            if mask.any():
                pieces.append(piece.select(mask))
        return concat_columns(pieces)

    # -- materialization ------------------------------------------------------

    def to_trace(self) -> Trace:
        """Materialize the full in-memory :class:`~repro.trace.Trace`.

        For arrival-sorted stores the columns are adopted directly
        ("columns from birth"); an unsorted store (e.g. a raw blkparse
        import) goes through the ``Trace`` constructor, whose stable
        arrival sort reproduces the whole-file parse exactly.
        """
        columns = self.columns()
        if self.arrival_sorted:
            return Trace.from_columns(self.name, columns, metadata=self.metadata)
        return Trace(
            name=self.name, requests=columns.to_requests(), metadata=self.metadata
        )

    # -- integrity ------------------------------------------------------------

    def verify(self, strict: bool = True) -> StoreVerifyResult:
        """Re-hash every chunk file against the manifest checksums.

        Returns a :class:`StoreVerifyResult` describing every chunk
        checked and every mismatch found.  With ``strict=True`` (the
        default, preserving the original contract) the first problem
        raises :class:`~repro.store.manifest.StoreError` instead;
        ``strict=False`` is the survey mode :func:`repro.store.repair.repair`
        builds on.
        """
        result = StoreVerifyResult()
        for info in self.manifest.chunks:
            result.chunks_checked += 1
            bad = verify_chunk_file(self.path, info)
            if bad is None:
                result.bytes_verified += info.nbytes
                continue
            if strict:
                if bad.reason == "truncated":
                    raise StoreError(
                        f"chunk {info.file}: {bad.actual_nbytes} bytes on disk, "
                        f"manifest says {info.nbytes}"
                    )
                if bad.reason == "missing":
                    raise StoreError(f"chunk {info.file}: file is missing")
                raise StoreError(f"chunk {info.file}: checksum mismatch")
            result.bad_chunks.append(bad)
        return result

    @property
    def chunk_infos(self) -> Sequence[ChunkInfo]:
        """The manifest's per-chunk index entries."""
        return tuple(self.manifest.chunks)


def open_store(path: Union[str, Path]) -> TraceStore:
    """Open the trace store directory at ``path`` (manifest validated)."""
    return TraceStore(path, read_manifest(path))
