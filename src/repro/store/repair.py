"""Crash-consistency repair for chunked trace stores.

Two failure shapes, one entry point (:func:`repair`):

* **Damaged packed store** -- a manifest exists but some chunk files are
  torn, bit-flipped or missing.  Bad chunks are quarantined (renamed with
  :data:`~repro.store.format.QUARANTINE_SUFFIX`) and then either rebuilt
  from a caller-provided source trace (checksum-verified against the
  manifest, so the rebuild is provably bit-identical to the original
  pack) or -- when the damage is a pure tail and no source is available --
  truncated out of the index.  Losing a *mid-stream* chunk with no source
  is unrecoverable and raises.

* **Killed writer** -- no manifest, but the writer's crash journal
  (:data:`~repro.store.format.JOURNAL_NAME`) is present.  The journaled
  chunks are re-hashed, any chunk file beyond the journal (the torn tail
  the kill interrupted) is quarantined, and the store is finalized: with
  a source, the missing tail is re-chunked at the journal's ``chunk_rows``
  so the result is byte-identical to a never-crashed pack; without one,
  the manifest covers the verified prefix.

Every repair ends with a strict :meth:`~repro.store.reader.TraceStore.verify`
of the repaired store, so ``repair()`` returning implies ``verify()``
passes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.trace import Trace, TraceColumns

from .format import QUARANTINE_SUFFIX, chunk_filename
from .manifest import (
    ChunkInfo,
    StoreError,
    StoreManifest,
    journal_path,
    manifest_path,
    read_journal,
    write_manifest,
)
from .reader import BadChunk, open_store, verify_chunk_file
from .writer import write_chunk_file


@dataclass
class RepairReport:
    """What one :func:`repair` call did to a store directory."""

    path: str
    #: True when the store was finalized from a killed writer's journal.
    used_journal: bool = False
    #: Chunk files renamed aside as ``<name>.corrupt``.
    quarantined: List[str] = field(default_factory=list)
    #: Chunk files re-written from the source trace (checksum-verified).
    rebuilt: List[str] = field(default_factory=list)
    #: Trailing chunks dropped from the index (no source to rebuild from).
    dropped_chunks: List[str] = field(default_factory=list)
    #: Rows in the repaired, verified store.
    total_rows: int = 0

    def describe(self) -> str:
        """One-line human summary for the CLI."""
        actions = []
        if self.used_journal:
            actions.append("finalized from writer journal")
        if self.quarantined:
            actions.append(f"quarantined {', '.join(self.quarantined)}")
        if self.rebuilt:
            actions.append(f"rebuilt {', '.join(self.rebuilt)}")
        if self.dropped_chunks:
            actions.append(f"dropped {', '.join(self.dropped_chunks)}")
        if not actions:
            actions.append("nothing to do")
        return f"{self.path}: {'; '.join(actions)} ({self.total_rows} rows)"


def _source_columns(
    source: Optional[Union[Trace, TraceColumns]]
) -> Optional[TraceColumns]:
    if source is None:
        return None
    if isinstance(source, Trace):
        return source.columns()
    return source


def _quarantine(store_dir: Path, file_name: str, report: RepairReport) -> None:
    path = store_dir / file_name
    if path.is_file():
        os.replace(path, store_dir / (file_name + QUARANTINE_SUFFIX))
    report.quarantined.append(file_name)


def _rebuild_chunk(
    store_dir: Path,
    info: ChunkInfo,
    row_offset: int,
    columns: TraceColumns,
    report: RepairReport,
) -> None:
    """Re-write one chunk from source rows and prove it matches the index."""
    if row_offset + info.rows > len(columns):
        raise StoreError(
            f"source trace has {len(columns)} rows; cannot rebuild "
            f"{info.file} covering rows {row_offset}..{row_offset + info.rows}"
        )
    piece = columns.select(slice(row_offset, row_offset + info.rows))
    written = write_chunk_file(store_dir / info.file, piece)
    if written.sha256 != info.sha256:
        raise StoreError(
            f"rebuilt {info.file} does not match the recorded checksum -- "
            "the provided source is not the trace this store was packed from"
        )
    report.rebuilt.append(info.file)


def _repair_against_index(
    store_dir: Path,
    chunks: List[ChunkInfo],
    columns: Optional[TraceColumns],
    report: RepairReport,
) -> List[ChunkInfo]:
    """Quarantine+rebuild (or truncate) bad chunks; returns the kept index."""
    bad: List[BadChunk] = []
    bad_indices: List[int] = []
    for index, info in enumerate(chunks):
        problem = verify_chunk_file(store_dir, info)
        if problem is not None:
            bad.append(problem)
            bad_indices.append(index)
    if not bad:
        return list(chunks)
    offsets: List[int] = []
    position = 0
    for info in chunks:
        offsets.append(position)
        position += info.rows
    for problem, index in zip(bad, bad_indices):
        if problem.reason != "missing":
            _quarantine(store_dir, problem.file, report)
    if columns is not None:
        for problem, index in zip(bad, bad_indices):
            _rebuild_chunk(store_dir, chunks[index], offsets[index], columns, report)
        return list(chunks)
    # No source: recoverable only when the damage is a pure tail.
    first_bad = bad_indices[0]
    if bad_indices != list(range(first_bad, len(chunks))):
        raise StoreError(
            f"chunk {chunks[first_bad].file} is damaged mid-stream and no "
            "source trace was provided to rebuild it"
        )
    report.dropped_chunks.extend(chunks[i].file for i in bad_indices)
    return list(chunks[:first_bad])


def repair(
    path: Union[str, Path],
    source: Optional[Union[Trace, TraceColumns]] = None,
) -> RepairReport:
    """Detect, quarantine and (where possible) undo store damage.

    ``source`` -- the trace the store was packed from, when available --
    turns quarantines into checksum-verified rebuilds and lets a killed
    writer's store be completed to a byte-identical clean pack.  Raises
    :class:`~repro.store.manifest.StoreError` when the damage is
    unrecoverable (mid-stream loss with no source, no manifest *and* no
    journal, or a source that does not match the recorded checksums).
    """
    store_dir = Path(path)
    report = RepairReport(path=str(store_dir))
    columns = _source_columns(source)
    manifest_file = manifest_path(store_dir)
    journal_file = journal_path(store_dir)

    if manifest_file.is_file():
        try:
            raw = json.loads(manifest_file.read_text())
        except json.JSONDecodeError as error:
            raise StoreError(f"corrupt manifest at {manifest_file!s}: {error}") from error
        if not isinstance(raw, dict):
            raise StoreError(f"corrupt manifest at {manifest_file!s}: not a JSON object")
        manifest = StoreManifest.from_dict(raw)
        kept = _repair_against_index(store_dir, manifest.chunks, columns, report)
        if kept != manifest.chunks:
            manifest = StoreManifest(
                name=manifest.name,
                metadata=manifest.metadata,
                chunks=kept,
                arrival_sorted=manifest.arrival_sorted,
            )
            write_manifest(store_dir, manifest)
        # A crash between manifest write and journal cleanup in close()
        # leaves both; the manifest wins.
        if journal_file.exists():
            journal_file.unlink()
    elif journal_file.is_file():
        report.used_journal = True
        journal = read_journal(store_dir)
        kept = _repair_against_index(store_dir, journal.chunks, columns, report)
        journaled_files = {info.file for info in journal.chunks}
        for stray in sorted(store_dir.glob("chunk-*.bin")):
            if stray.name not in journaled_files:
                # The torn tail the kill interrupted (never journaled).
                _quarantine(store_dir, stray.name, report)
        arrival_sorted = journal.arrival_sorted
        if columns is not None:
            # Complete the pack: re-chunk the tail exactly as the writer
            # would have, so the result is byte-identical to a clean pack.
            done_rows = sum(info.rows for info in kept)
            chunk_rows = journal.chunk_rows
            position = done_rows
            while position < len(columns):
                take = min(chunk_rows, len(columns) - position)
                info = write_chunk_file(
                    store_dir / chunk_filename(len(kept)),
                    columns.select(slice(position, position + take)),
                )
                report.rebuilt.append(info.file)
                kept.append(info)
                position += take
            arrivals = columns.arrival_us
            arrival_sorted = bool(
                arrivals.size < 2 or not np.any(np.diff(arrivals) < 0)
            )
        write_manifest(
            store_dir,
            StoreManifest(
                name=journal.name,
                metadata=journal.metadata,
                chunks=kept,
                arrival_sorted=arrival_sorted,
            ),
        )
        journal_file.unlink()
    else:
        raise StoreError(
            f"{store_dir!s} has neither a manifest nor a writer journal -- "
            "nothing to repair from"
        )

    verified = open_store(store_dir).verify(strict=True)
    report.total_rows = open_store(store_dir).manifest.total_rows
    assert verified.ok  # strict verify raised otherwise
    return report
