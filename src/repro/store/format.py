"""On-disk layout constants of the chunked columnar trace store.

A store is a directory::

    mystore/
        manifest.json         # schema, metadata, per-chunk index
        chunk-000000.bin      # columnar binary, CHUNK_COLUMNS order
        chunk-000001.bin
        ...

Each chunk file holds the seven :class:`~repro.trace.TraceColumns`
arrays for a contiguous slice of the request stream, stored column by
column (struct-of-arrays on disk, exactly like in memory)::

    offset 0          : arrival_us       float64[rows]  little-endian
    offset 8*rows     : service_start_us float64[rows]
    offset 16*rows    : complete_us      float64[rows]
    offset 24*rows    : lba              int64[rows]
    offset 32*rows    : size             int64[rows]
    offset 40*rows    : op               uint8[rows]
    offset 41*rows    : flags            uint8[rows]

so a reader can :func:`numpy.memmap` any single column of any chunk
without touching the rest of the file.  Row counts per chunk, arrival
min/max (for range pruning) and SHA-256 content checksums live in the
manifest; the chunk files themselves carry no header.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

#: Manifest ``format`` marker and current layout version.
STORE_FORMAT = "repro-trace-store"
STORE_VERSION = 1

#: File name of the JSON manifest inside the store directory.
MANIFEST_NAME = "manifest.json"

#: File name of the writer's crash journal.  Present only while a
#: :class:`~repro.store.writer.StoreWriter` is mid-stream (it is removed
#: by ``close()``), so finding one next to chunk files -- without a
#: manifest -- identifies a killed writer; ``repro.store.repair`` can
#: finalize the store from it.
JOURNAL_NAME = "manifest.partial.json"

#: Manifest ``format`` marker of the crash journal.
JOURNAL_FORMAT = "repro-trace-store-journal"

#: Suffix appended to quarantined (corrupt/torn) chunk files by repair.
QUARANTINE_SUFFIX = ".corrupt"

#: Column order inside each chunk file (must match the write order).
CHUNK_COLUMNS: Tuple[str, ...] = (
    "arrival_us",
    "service_start_us",
    "complete_us",
    "lba",
    "size",
    "op",
    "flags",
)

#: Explicit little-endian dtype per column -- the on-disk byte contract.
COLUMN_DTYPES: Dict[str, str] = {
    "arrival_us": "<f8",
    "service_start_us": "<f8",
    "complete_us": "<f8",
    "lba": "<i8",
    "size": "<i8",
    "op": "|u1",
    "flags": "|u1",
}

#: Bytes one row occupies across all columns (3*8 + 2*8 + 2*1).
ROW_NBYTES = sum(np.dtype(COLUMN_DTYPES[name]).itemsize for name in CHUNK_COLUMNS)

#: Default rows per chunk: 64 Ki rows is ~2.1 MiB per chunk file, small
#: enough that a re-chunking reader never concatenates much, large enough
#: that the manifest stays tiny even for 1000x-scaled traces.
DEFAULT_CHUNK_ROWS = 65536


def chunk_filename(index: int) -> str:
    """File name of the ``index``-th chunk (zero-based, zero-padded)."""
    if index < 0:
        raise ValueError("chunk index must be non-negative")
    return f"chunk-{index:06d}.bin"


def chunk_nbytes(rows: int) -> int:
    """Size in bytes of a chunk file holding ``rows`` rows."""
    return rows * ROW_NBYTES


def column_offsets(rows: int) -> Dict[str, int]:
    """Byte offset of each column inside a chunk file of ``rows`` rows."""
    offsets: Dict[str, int] = {}
    position = 0
    for name in CHUNK_COLUMNS:
        offsets[name] = position
        position += rows * np.dtype(COLUMN_DTYPES[name]).itemsize
    return offsets


def schema_as_json() -> Dict[str, str]:
    """The dtype schema exactly as serialized into the manifest."""
    return {name: COLUMN_DTYPES[name] for name in CHUNK_COLUMNS}
