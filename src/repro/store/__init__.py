"""``repro.store``: chunked, memory-mapped, on-disk columnar trace store.

The row-at-a-time CSV format (:mod:`repro.trace.io`) is fine for the
paper's 25 modest traces but collapses at production scale: a
1000x-scaled trace neither parses quickly nor fits comfortably in RAM.
This package stores a trace as a directory of fixed-size binary chunk
files -- the same struct-of-arrays layout
:class:`~repro.trace.TraceColumns` uses in memory -- plus a JSON
manifest with the dtype schema, per-chunk row counts, arrival min/max
(range pruning) and SHA-256 checksums.

Write side: :func:`pack` (one-shot) and :class:`StoreWriter` (streaming
-- producers append request/column batches of any size and never hold
the full trace).  Read side: :func:`open_store` returns a
:class:`TraceStore` with lazy ``np.memmap`` chunk access, re-chunking
iteration, pruned range/mask selection and a ``to_trace()`` escape
hatch.  Pair with :mod:`repro.streaming` for out-of-core analysis.

See ``docs/trace-store.md`` for the on-disk layout and chunk-size
guidance.
"""

from .format import (
    CHUNK_COLUMNS,
    COLUMN_DTYPES,
    DEFAULT_CHUNK_ROWS,
    MANIFEST_NAME,
    ROW_NBYTES,
    STORE_FORMAT,
    STORE_VERSION,
    chunk_filename,
)
from .manifest import ChunkInfo, StoreError, StoreManifest, read_manifest, write_manifest
from .reader import TraceStore, open_store
from .writer import StoreWriter, concat_columns, pack

__all__ = [
    "CHUNK_COLUMNS",
    "COLUMN_DTYPES",
    "DEFAULT_CHUNK_ROWS",
    "MANIFEST_NAME",
    "ROW_NBYTES",
    "STORE_FORMAT",
    "STORE_VERSION",
    "chunk_filename",
    "ChunkInfo",
    "StoreError",
    "StoreManifest",
    "read_manifest",
    "write_manifest",
    "TraceStore",
    "open_store",
    "StoreWriter",
    "concat_columns",
    "pack",
]
