"""``repro.store``: chunked, memory-mapped, on-disk columnar trace store.

The row-at-a-time CSV format (:mod:`repro.trace.io`) is fine for the
paper's 25 modest traces but collapses at production scale: a
1000x-scaled trace neither parses quickly nor fits comfortably in RAM.
This package stores a trace as a directory of fixed-size binary chunk
files -- the same struct-of-arrays layout
:class:`~repro.trace.TraceColumns` uses in memory -- plus a JSON
manifest with the dtype schema, per-chunk row counts, arrival min/max
(range pruning) and SHA-256 checksums.

Write side: :func:`pack` (one-shot) and :class:`StoreWriter` (streaming
-- producers append request/column batches of any size and never hold
the full trace).  Read side: :func:`open_store` returns a
:class:`TraceStore` with lazy ``np.memmap`` chunk access, re-chunking
iteration, pruned range/mask selection and a ``to_trace()`` escape
hatch.  Pair with :mod:`repro.streaming` for out-of-core analysis.

Crash consistency: the writer journals flushed chunks
(:class:`StoreJournal`, removed on clean close); :meth:`TraceStore.verify`
re-hashes chunks into a :class:`StoreVerifyResult`; and :func:`repair`
quarantines, rebuilds or finalizes damaged/half-written stores.  See
``docs/fault-model.md`` for the repair workflow.

See ``docs/trace-store.md`` for the on-disk layout and chunk-size
guidance.
"""

from .format import (
    CHUNK_COLUMNS,
    COLUMN_DTYPES,
    DEFAULT_CHUNK_ROWS,
    JOURNAL_FORMAT,
    JOURNAL_NAME,
    MANIFEST_NAME,
    QUARANTINE_SUFFIX,
    ROW_NBYTES,
    STORE_FORMAT,
    STORE_VERSION,
    chunk_filename,
)
from .manifest import (
    ChunkInfo,
    StoreError,
    StoreJournal,
    StoreManifest,
    journal_path,
    read_journal,
    read_manifest,
    write_journal,
    write_manifest,
)
from .reader import (
    BadChunk,
    StoreVerifyResult,
    TraceStore,
    open_store,
    verify_chunk_file,
)
from .repair import RepairReport, repair
from .writer import StoreWriter, concat_columns, pack, write_chunk_file

__all__ = [
    "CHUNK_COLUMNS",
    "COLUMN_DTYPES",
    "DEFAULT_CHUNK_ROWS",
    "JOURNAL_FORMAT",
    "JOURNAL_NAME",
    "MANIFEST_NAME",
    "QUARANTINE_SUFFIX",
    "ROW_NBYTES",
    "STORE_FORMAT",
    "STORE_VERSION",
    "chunk_filename",
    "BadChunk",
    "ChunkInfo",
    "RepairReport",
    "StoreError",
    "StoreJournal",
    "StoreManifest",
    "StoreVerifyResult",
    "journal_path",
    "read_journal",
    "read_manifest",
    "repair",
    "verify_chunk_file",
    "write_journal",
    "write_manifest",
    "TraceStore",
    "open_store",
    "StoreWriter",
    "concat_columns",
    "pack",
    "write_chunk_file",
]
