"""Streaming writer for chunked columnar trace stores.

:class:`StoreWriter` accepts column batches (or ``Request`` batches) of
any size and re-chunks them into fixed-size chunk files, so producers --
the workload generator, the ``blkparse`` importer, a device replay loop
-- can emit a store incrementally without ever materializing a full
:class:`~repro.trace.Trace` in memory.  :func:`pack` is the one-shot
convenience over it.

The writer is careful about durability and determinism:

* chunk files are written column-by-column in :data:`~repro.store.format.CHUNK_COLUMNS`
  order while a SHA-256 checksum is folded over the exact bytes written;
* the manifest is only written by :meth:`StoreWriter.close` (atomic
  temp + rename), so a crashed pack never leaves a readable-looking
  store behind;
* no timestamps anywhere: packing the same trace twice produces
  byte-identical directories.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from types import TracebackType
from typing import Dict, Iterable, List, Optional, Sequence, Type, Union

import numpy as np

from repro.trace import Request, Trace, TraceColumns

from .format import (
    CHUNK_COLUMNS,
    COLUMN_DTYPES,
    DEFAULT_CHUNK_ROWS,
    JOURNAL_NAME,
    MANIFEST_NAME,
    chunk_filename,
)
from .manifest import (
    ChunkInfo,
    StoreError,
    StoreJournal,
    StoreManifest,
    journal_path,
    write_journal,
    write_manifest,
)


def write_chunk_file(path: Path, columns: TraceColumns) -> "ChunkInfo":
    """Write one chunk file and return its manifest entry.

    Columns go to disk in :data:`~repro.store.format.CHUNK_COLUMNS` order
    while a SHA-256 is folded over the exact bytes written -- the one
    byte-level writer shared by :class:`StoreWriter` and
    :func:`repro.store.repair.repair` (so a rebuilt chunk is bit-identical
    to the original pack's).
    """
    digest = hashlib.sha256()
    nbytes = 0
    with open(path, "wb") as handle:
        for name in CHUNK_COLUMNS:
            array = np.ascontiguousarray(
                getattr(columns, name), dtype=np.dtype(COLUMN_DTYPES[name])
            )
            payload = array.tobytes()
            digest.update(payload)
            handle.write(payload)
            nbytes += len(payload)
    arrivals = columns.arrival_us
    return ChunkInfo(
        file=path.name,
        rows=len(columns),
        min_arrival_us=float(arrivals.min()),
        max_arrival_us=float(arrivals.max()),
        sha256=digest.hexdigest(),
        nbytes=nbytes,
    )


def concat_columns(pieces: Sequence[TraceColumns]) -> TraceColumns:
    """Concatenate column sets into one (empty input -> empty columns)."""
    pieces = [piece for piece in pieces if len(piece)]
    if not pieces:
        return TraceColumns.empty()
    if len(pieces) == 1:
        return pieces[0]
    return TraceColumns(
        *(
            np.concatenate([getattr(piece, name) for piece in pieces])
            for name in CHUNK_COLUMNS
        )
    )


class StoreWriter:
    """Incrementally write one trace store directory.

    Usage::

        with StoreWriter(path, name="Twitter", metadata=meta) as writer:
            for batch in produce_request_batches():
                writer.append_requests(batch)
        store = open_store(path)

    ``append_*`` calls may carry any number of rows; the writer buffers
    at most ``chunk_rows`` rows (one chunk) before flushing to disk.
    """

    def __init__(
        self,
        path: Union[str, Path],
        name: str = "trace",
        metadata: Optional[Dict[str, str]] = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        overwrite: bool = False,
    ) -> None:
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        self.path = Path(path)
        self.name = name
        self.metadata = dict(metadata or {})
        self.chunk_rows = int(chunk_rows)
        self._pending: List[TraceColumns] = []
        self._pending_rows = 0
        self._chunks: List[ChunkInfo] = []
        self._sorted = True
        self._last_arrival: Optional[float] = None
        self._closed = False
        #: Populated by :meth:`close`.
        self.manifest: Optional[StoreManifest] = None
        self.path.mkdir(parents=True, exist_ok=True)
        manifest_file = self.path / MANIFEST_NAME
        journal_file = self.path / JOURNAL_NAME
        if manifest_file.exists() or journal_file.exists():
            if not overwrite:
                what = (
                    "a trace store"
                    if manifest_file.exists()
                    else "a crashed writer's journal (repair or overwrite it)"
                )
                raise StoreError(
                    f"{self.path!s} already holds {what} "
                    "(pass overwrite=True to replace it)"
                )
            for stale_meta in (manifest_file, journal_file):
                if stale_meta.exists():
                    stale_meta.unlink()
            for stale in sorted(self.path.glob("chunk-*.bin")):
                stale.unlink()

    # -- appending ------------------------------------------------------------

    def append_columns(self, columns: TraceColumns) -> None:
        """Queue a columnar batch (any length, including zero)."""
        if self._closed:
            raise StoreError("writer is closed")
        rows = len(columns)
        if rows == 0:
            return
        arrivals = columns.arrival_us
        if self._sorted:
            if self._last_arrival is not None and float(arrivals[0]) < self._last_arrival:
                self._sorted = False
            elif rows > 1 and bool(np.any(np.diff(arrivals) < 0)):
                self._sorted = False
        self._last_arrival = float(arrivals[-1])
        self._pending.append(columns)
        self._pending_rows += rows
        while self._pending_rows >= self.chunk_rows:
            self._flush_rows(self.chunk_rows)

    def append_requests(self, requests: Sequence[Request]) -> None:
        """Queue a batch of :class:`~repro.trace.Request` records."""
        if requests:
            self.append_columns(TraceColumns.from_requests(list(requests)))

    def append_trace(self, trace: Trace) -> None:
        """Queue a whole trace's columns (adopts its cached view)."""
        self.append_columns(trace.columns())

    # -- flushing -------------------------------------------------------------

    def _take_rows(self, rows: int) -> TraceColumns:
        """Remove exactly ``rows`` rows from the front of the buffer."""
        taken: List[TraceColumns] = []
        needed = rows
        while needed > 0:
            piece = self._pending[0]
            if len(piece) <= needed:
                taken.append(piece)
                needed -= len(piece)
                self._pending.pop(0)
            else:
                taken.append(piece.select(slice(0, needed)))
                self._pending[0] = piece.select(slice(needed, len(piece)))
                needed = 0
        self._pending_rows -= rows
        return concat_columns(taken)

    def _flush_rows(self, rows: int) -> None:
        columns = self._take_rows(rows)
        file_name = chunk_filename(len(self._chunks))
        self._chunks.append(write_chunk_file(self.path / file_name, columns))
        # Crash consistency: journal the chunks flushed so far (atomic
        # replace, *after* the chunk file is durable).  A writer killed
        # mid-stream leaves the journal plus possibly one torn chunk
        # beyond it; ``repro.store.repair`` finalizes from there.
        write_journal(
            self.path,
            StoreJournal(
                name=self.name,
                metadata=self.metadata,
                chunk_rows=self.chunk_rows,
                chunks=self._chunks,
                arrival_sorted=self._sorted,
            ),
        )

    # -- finalization ---------------------------------------------------------

    @property
    def rows_written(self) -> int:
        """Rows already flushed to chunk files."""
        return sum(chunk.rows for chunk in self._chunks)

    def close(self) -> StoreManifest:
        """Flush the partial tail chunk and write the manifest atomically."""
        if self._closed:
            raise StoreError("writer is already closed")
        if self._pending_rows:
            self._flush_rows(self._pending_rows)
        manifest = StoreManifest(
            name=self.name,
            metadata=self.metadata,
            chunks=self._chunks,
            arrival_sorted=self._sorted,
        )
        write_manifest(self.path, manifest)
        # The manifest supersedes the journal; removing it keeps a packed
        # directory byte-identical to pre-journal packs (and re-packs).
        journal = journal_path(self.path)
        if journal.exists():
            journal.unlink()
        self._closed = True
        self.manifest = manifest
        return manifest

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        # Only finalize a clean exit; a raised exception leaves no manifest,
        # so the partial directory is not mistaken for a valid store.
        if exc_type is None and not self._closed:
            self.close()


def pack(
    source: Union[Trace, TraceColumns, Iterable[TraceColumns]],
    path: Union[str, Path],
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    name: Optional[str] = None,
    metadata: Optional[Dict[str, str]] = None,
    overwrite: bool = False,
) -> StoreManifest:
    """Pack ``source`` into a store directory at ``path``.

    ``source`` may be a :class:`~repro.trace.Trace` (name/metadata are
    taken from it unless overridden), a single
    :class:`~repro.trace.TraceColumns`, or any iterable of column
    batches (the fully streaming path).
    """
    if isinstance(source, Trace):
        writer = StoreWriter(
            path,
            name=name if name is not None else source.name,
            metadata=metadata if metadata is not None else source.metadata,
            chunk_rows=chunk_rows,
            overwrite=overwrite,
        )
        writer.append_trace(source)
    else:
        writer = StoreWriter(
            path,
            name=name if name is not None else "trace",
            metadata=metadata,
            chunk_rows=chunk_rows,
            overwrite=overwrite,
        )
        if isinstance(source, TraceColumns):
            writer.append_columns(source)
        else:
            for batch in source:
                writer.append_columns(batch)
    return writer.close()
