"""repro-trace: generate, collect and inspect traces from the command line.

Subcommands::

    repro-trace list
        Show the 25 applications and their published headline statistics.

    repro-trace generate Twitter -o twitter.csv [--requests N] [--seed S]
        Synthesize a calibrated trace and write it as CSV.

    repro-trace collect Twitter -o twitter.csv [--requests N] [--seed S]
        Collect a trace closed-loop on the reference device (timestamps
        included, as BIOtracer would record them).

    repro-trace stack Messaging -o trace.csv [--duration SECONDS]
        Collect a trace mechanistically through the simulated Android
        stack.

    repro-trace convert blkparse.txt -o trace.csv
        Convert Linux blkparse text output into the repro CSV format.

    repro-trace stats trace.csv [--engine {batch,streaming}]
        Print the Table III / Table IV style statistics of a trace file.
        Both engines produce byte-identical tables (the metric-layer
        contract); ``--engine streaming`` folds the trace chunk by chunk
        through the same registry metrics the batch kernels use.

    repro-trace metrics list
        Show the metric registry: one definition per statistic, with its
        execution engines and cross-chunk carry state.

    repro-trace store pack trace.csv -o store-dir [--chunk-rows N]
    repro-trace store pack --app Twitter -o store-dir [--requests N]
    repro-trace store pack --blkparse blkparse.txt -o store-dir
        Pack a trace into a chunked columnar store directory.

    repro-trace store info store-dir [--verify]
        Show the store's manifest (schema, chunk index, checksums).

    repro-trace store cat store-dir -o trace.csv
        Stream a store back out as trace CSV, chunk by chunk.

    repro-trace store stats store-dir
        The ``stats`` table, computed out-of-core with the streaming
        summaries (one memory-mapped chunk resident at a time).

    repro-trace store repair store-dir [--source trace.csv]
        Detect and undo store damage: quarantine torn/corrupt chunks,
        rebuild them from the source trace (checksum-verified), or
        finalize a killed writer's store from its crash journal.

    repro-trace replay APP [--telemetry OUT.json] [--span-store DIR]
                           [--flame] [--requests N] [--seed S]
        Replay APP open-loop on the reference device with a telemetry
        sink attached: print the exact latency decomposition totals and
        optionally export a Chrome-trace JSON (chrome://tracing /
        Perfetto), a columnar span store, or a text flame summary.

    repro-trace faults APP [--profile NAME] [--seed N] [--requests N]
                           [--power-loss-at EVENT]
        Replay APP on the reference device under a seeded fault plan
        (ECC retries, bad-block remapping, power loss + recovery) and
        report the fault counters.

    repro-trace experiments [IDS ...] [--quick] [--jobs N] [--no-cache]
                            [--cache-dir DIR] ...
        Run the paper's experiments (same engine and flags as the
        ``repro-experiments`` entry point, including the parallel sharded
        runner and the on-disk result cache).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.trace import parse_blkparse, read_trace, write_trace
from repro.analysis import render_table, size_stats, timing_stats
from repro.workloads import ALL_TRACES, TABLE_III, TABLE_IV, collect, generate_trace


def _cmd_list(_args) -> int:
    from repro.workloads import TABLE_I

    rows = [
        [
            name,
            TABLE_III[name].num_requests,
            TABLE_III[name].avg_size_kib,
            TABLE_III[name].write_req_pct,
            TABLE_IV[name].arrival_rate,
            TABLE_IV[name].duration_s,
            TABLE_I.get(name, "combo: " + name.replace("/", " + ")),
        ]
        for name in ALL_TRACES
    ]
    print(render_table(
        ["App", "#Reqs", "Avg KiB", "Write %", "Req/s", "Duration s", "Definition"],
        rows,
        title="The 25 traces (published statistics)",
    ))
    return 0


def _cmd_generate(args) -> int:
    trace = generate_trace(args.app, seed=args.seed, num_requests=args.requests)
    write_trace(trace, args.output)
    print(f"wrote {len(trace)} requests to {args.output}")
    return 0


def _cmd_collect(args) -> int:
    result = collect(args.app, seed=args.seed, num_requests=args.requests)
    write_trace(result.trace, args.output)
    print(
        f"wrote {len(result.trace)} completed requests to {args.output} "
        f"(no-wait {result.device_stats.no_wait_ratio * 100:.1f}%)"
    )
    return 0


def _cmd_stack(args) -> int:
    from repro.android import collect_trace as android_collect

    result = android_collect(args.app, duration_s=args.duration, seed=args.seed)
    write_trace(result.trace, args.output)
    print(
        f"wrote {len(result.trace)} requests to {args.output} "
        f"(tracer overhead {result.tracer_stats.overhead_ratio * 100:.2f}%)"
    )
    return 0


def _cmd_convert(args) -> int:
    trace = parse_blkparse(args.input)
    write_trace(trace, args.output)
    completed = sum(1 for r in trace if r.completed)
    print(
        f"converted {len(trace)} requests ({completed} with full timestamps) "
        f"to {args.output}"
    )
    return 0


def _stats_table(name: str, sizes, timing, completed: bool) -> str:
    """The ``stats`` report (shared by the CSV and store paths)."""
    rows = [
        ["Requests", f"{sizes.num_requests:,}"],
        ["Data size (KiB)", f"{sizes.data_size_kib:,.0f}"],
        ["Avg / max size (KiB)", f"{sizes.avg_size_kib:.1f} / {sizes.max_size_kib:.0f}"],
        ["Write requests %", f"{sizes.write_req_pct:.1f}"],
        ["Write data %", f"{sizes.write_size_pct:.1f}"],
        ["Duration (s)", f"{timing.duration_s:,.1f}"],
        ["Arrival rate (req/s)", f"{timing.arrival_rate:.2f}"],
        ["Access rate (KiB/s)", f"{timing.access_rate_kib_s:,.1f}"],
        ["Spatial / temporal locality %",
         f"{timing.spatial_locality_pct:.1f} / {timing.temporal_locality_pct:.1f}"],
    ]
    if completed:
        rows += [
            ["No-wait %", f"{timing.nowait_pct:.1f}"],
            ["Mean service / response (ms)",
             f"{timing.mean_service_ms:.2f} / {timing.mean_response_ms:.2f}"],
        ]
    return render_table(["Metric", "Value"], rows, title=f"Trace {name!r}")


def _cmd_stats(args) -> int:
    trace = read_trace(args.trace)
    if args.engine == "streaming":
        from repro.streaming import StreamingTraceSummary, chunked

        summary = StreamingTraceSummary(collapse=True)
        for chunk in chunked(trace.columns(), 65536):
            summary.update(chunk)
        completed = summary.timing.completed
        result = summary.finalize(trace.name)
        sizes, timing = result.size, result.timing
    else:
        sizes, timing = size_stats(trace), timing_stats(trace)
        completed = trace.completed
    # The table itself is byte-identical across engines (asserted in
    # tests/test_cli.py); the engine note goes to stderr so it never
    # perturbs stdout comparisons.
    print(f"[engine: {args.engine}]", file=sys.stderr)
    print(_stats_table(trace.name, sizes, timing, completed))
    return 0


def _cmd_metrics_list(_args) -> int:
    from repro.metrics import all_metrics

    rows = [
        [
            metric.name,
            ", ".join(metric.engines),
            ", ".join(metric.carry_fields) or "-",
            metric.value_doc,
        ]
        for metric in all_metrics()
    ]
    print(render_table(
        ["Metric", "Engines", "Carry state", "Value"],
        rows,
        title="Metric registry (one definition per statistic)",
    ))
    return 0


def _cmd_store_pack(args) -> int:
    from repro.store import StoreWriter, pack

    sources = [bool(args.input), bool(args.app), bool(args.blkparse)]
    if sum(sources) != 1:
        print("store pack: give exactly one of INPUT.csv, --app or --blkparse",
              file=sys.stderr)
        return 2
    if args.app:
        trace = generate_trace(args.app, seed=args.seed, num_requests=args.requests)
        manifest = pack(trace, args.output, chunk_rows=args.chunk_rows,
                        overwrite=args.force)
    elif args.blkparse:
        from pathlib import Path

        from repro.trace import iter_requests

        writer = StoreWriter(
            args.output,
            name=Path(args.blkparse).stem,
            metadata={"source": "blkparse"},
            chunk_rows=args.chunk_rows,
            overwrite=args.force,
        )
        for batch in iter_requests(args.blkparse):
            writer.append_requests(batch)
        manifest = writer.close()
    else:
        trace = read_trace(args.input)
        manifest = pack(trace, args.output, chunk_rows=args.chunk_rows,
                        overwrite=args.force)
    print(
        f"packed {manifest.total_rows:,} requests into {len(manifest.chunks)} "
        f"chunk(s) ({manifest.total_nbytes:,} bytes) at {args.output}"
    )
    return 0


def _cmd_store_info(args) -> int:
    from repro.store import open_store

    store = open_store(args.store)
    if args.verify:
        store.verify()
    meta = store.metadata
    rows = [
        ["Name", store.name],
        ["Requests", f"{len(store):,}"],
        ["Chunks", f"{store.num_chunks}"],
        ["Bytes", f"{store.manifest.total_nbytes:,}"],
        ["Arrival sorted", "yes" if store.arrival_sorted else "no"],
        ["Verified", "ok" if args.verify else "not checked"],
    ]
    for key in sorted(meta):
        rows.append([f"meta:{key}", meta[key]])
    print(render_table(["Field", "Value"], rows, title=f"Store {str(args.store)!r}"))
    if args.chunks:
        chunk_rows = [
            [i, info.file, f"{info.rows:,}", f"{info.min_arrival_us:,.0f}",
             f"{info.max_arrival_us:,.0f}", info.sha256[:12]]
            for i, info in enumerate(store.chunk_infos)
        ]
        print(render_table(
            ["#", "File", "Rows", "Min arrival us", "Max arrival us", "SHA-256"],
            chunk_rows,
        ))
    return 0


def _cmd_store_cat(args) -> int:
    from repro.store import open_store
    from repro.trace.io import format_header, format_rows

    store = open_store(args.store)
    written = 0
    with open(args.output, "w", newline="") as handle:
        handle.write(format_header(store.name, store.metadata))
        for chunk in store.iter_chunks():
            handle.write(format_rows(chunk))
            written += len(chunk)
    print(f"wrote {written:,} requests to {args.output}")
    return 0


def _cmd_store_stats(args) -> int:
    from repro.store import open_store
    from repro.streaming import StreamingTraceSummary

    store = open_store(args.store)
    summary = StreamingTraceSummary(collapse=True)
    for chunk in store.iter_chunks(chunk_rows=args.chunk_rows):
        summary.update(chunk)
    completed = summary.timing.completed
    result = summary.finalize(store.name)
    print("[engine: streaming (out-of-core)]", file=sys.stderr)
    print(_stats_table(store.name, result.size, result.timing, completed))
    return 0


def _cmd_store_repair(args) -> int:
    from repro.store import StoreError, repair

    source = read_trace(args.source) if args.source else None
    try:
        report = repair(args.store, source=source)
    except StoreError as error:
        print(f"store repair: {error}", file=sys.stderr)
        return 1
    print(report.describe())
    return 0


def _cmd_faults(args) -> int:
    from repro.emmc import four_ps
    from repro.faults import FaultPlan, replay_with_faults, stats_digest

    plan = FaultPlan.profile(args.profile, seed=args.seed)
    if args.power_loss_at is not None:
        plan = plan.with_overrides(power_loss_at_event=args.power_loss_at)
    trace = generate_trace(args.app, seed=args.seed, num_requests=args.requests)
    result = replay_with_faults(four_ps(), trace, plan)
    stats = result.stats
    rows = [
        ["Requests served", f"{len(result.trace):,}"],
        ["Read retries (ECC)", f"{stats.read_retries:,}"],
        ["Corrected reads", f"{stats.corrected_reads:,}"],
        ["Uncorrectable reads", f"{stats.uncorrectable_reads:,}"],
        ["Retry backoff (us)", f"{stats.read_retry_backoff_us:,.0f}"],
        ["Program failures", f"{stats.program_failures:,}"],
        ["Erase failures", f"{stats.erase_failures:,}"],
        ["Bad blocks retired", f"{stats.bad_blocks_retired:,}"],
        ["Spare blocks consumed", f"{stats.spare_blocks_consumed:,}"],
        ["Remap-migrated slots", f"{stats.remap_migrated_slots:,}"],
        ["Power-loss recoveries", f"{stats.recoveries:,}"],
    ]
    if result.recovery is not None:
        rows += [
            ["Power cut at (us)", f"{result.recovery.cut_us:,.0f}"],
            ["Resumed at (us)", f"{result.recovery.resumed_us:,.0f}"],
            ["Remapped entries", f"{result.recovery.remapped_entries:,}"],
            ["Requests resubmitted", f"{result.resubmitted:,}"],
        ]
    rows.append(["Stats digest", stats_digest(stats)[:16]])
    print(render_table(
        ["Counter", "Value"],
        rows,
        title=f"Fault replay {args.app!r} (profile {args.profile!r}, seed {args.seed})",
    ))
    return 0


def _cmd_replay(args) -> int:
    from repro.emmc import EmmcDevice, four_ps
    from repro.sim import Host
    from repro.telemetry import (
        COMPONENTS,
        Telemetry,
        chrome_trace,
        flame_summary,
        pack_spans,
    )

    sink = Telemetry()
    sink.meta["app"] = args.app
    sink.meta["seed"] = args.seed
    trace = generate_trace(args.app, seed=args.seed, num_requests=args.requests)
    device = EmmcDevice(four_ps(), telemetry=sink)
    result = Host(device).replay(trace.without_timing())
    stats = result.stats

    totals = {name: 0.0 for name in COMPONENTS}
    for dec in sink.decompositions:
        for name, value in dec.components.items():
            totals[name] += value
    response_total = sum(stats.response_us)
    rows = [
        ["Requests served", f"{len(result.trace):,}"],
        ["Mean response (ms)", f"{response_total / max(len(result.trace), 1) / 1000:.3f}"],
        ["Spans recorded", f"{len(sink.spans):,}"],
        ["Events recorded", f"{len(sink.events) + len(sink.kernel_events):,}"],
    ]
    for name in COMPONENTS:
        share = 100.0 * totals[name] / response_total if response_total else 0.0
        rows.append([f"  {name} (us)", f"{totals[name]:,.1f} ({share:.1f}%)"])
    print(render_table(
        ["Metric", "Value"],
        rows,
        title=f"Telemetry replay {args.app!r} (seed {args.seed})",
    ))
    if args.telemetry:
        chrome_trace(sink, args.telemetry)
        print(f"wrote Chrome trace to {args.telemetry} (load in chrome://tracing)")
    if args.span_store:
        manifest = pack_spans(sink, args.span_store, overwrite=args.force)
        print(
            f"packed {manifest['total_rows']:,} spans into "
            f"{len(manifest['chunks'])} chunk(s) at {args.span_store}"
        )
    if args.flame:
        print(flame_summary(sink))
    return 0


def _cmd_experiments_argv(rest: List[str]) -> int:
    from repro.experiments.runner import main as experiments_main

    return experiments_main(rest)


def _cmd_experiments(args) -> int:
    return _cmd_experiments_argv(list(args.rest))


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro-trace argument parser."""
    parser = argparse.ArgumentParser(prog="repro-trace", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the 25 applications").set_defaults(fn=_cmd_list)

    for name, fn, help_text in (
        ("generate", _cmd_generate, "synthesize a calibrated trace"),
        ("collect", _cmd_collect, "collect closed-loop on the reference device"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("app", choices=ALL_TRACES, metavar="APP")
        cmd.add_argument("-o", "--output", required=True)
        cmd.add_argument("--requests", type=int, default=None)
        cmd.add_argument("--seed", type=int, default=20150614)
        cmd.set_defaults(fn=fn)

    stack = sub.add_parser("stack", help="collect via the simulated Android stack")
    stack.add_argument("app", metavar="APP")
    stack.add_argument("-o", "--output", required=True)
    stack.add_argument("--duration", type=float, default=300.0)
    stack.add_argument("--seed", type=int, default=0)
    stack.set_defaults(fn=_cmd_stack)

    convert = sub.add_parser("convert", help="convert blkparse text to trace CSV")
    convert.add_argument("input")
    convert.add_argument("-o", "--output", required=True)
    convert.set_defaults(fn=_cmd_convert)

    stats = sub.add_parser("stats", help="print statistics of a trace CSV")
    stats.add_argument("trace")
    stats.add_argument("--engine", choices=("batch", "streaming"), default="batch",
                       help="execution engine; both print byte-identical tables")
    stats.set_defaults(fn=_cmd_stats)

    metrics = sub.add_parser("metrics", help="inspect the metric registry")
    metrics_sub = metrics.add_subparsers(dest="metrics_command", required=True)
    metrics_list = metrics_sub.add_parser(
        "list", help="show every registered metric and its engines"
    )
    metrics_list.set_defaults(fn=_cmd_metrics_list)

    store = sub.add_parser("store", help="chunked columnar trace stores")
    store_sub = store.add_subparsers(dest="store_command", required=True)

    pack_cmd = store_sub.add_parser("pack", help="pack a trace into a store")
    pack_cmd.add_argument("input", nargs="?", default=None,
                          help="trace CSV to pack (or use --app/--blkparse)")
    pack_cmd.add_argument("--app", choices=ALL_TRACES, metavar="APP", default=None,
                          help="synthesize APP and pack it directly")
    pack_cmd.add_argument("--blkparse", default=None, metavar="FILE",
                          help="stream-convert blkparse text into the store")
    pack_cmd.add_argument("-o", "--output", required=True, help="store directory")
    pack_cmd.add_argument("--chunk-rows", type=int, default=65536)
    pack_cmd.add_argument("--requests", type=int, default=None)
    pack_cmd.add_argument("--seed", type=int, default=20150614)
    pack_cmd.add_argument("-f", "--force", action="store_true",
                          help="replace an existing store at the destination")
    pack_cmd.set_defaults(fn=_cmd_store_pack)

    info_cmd = store_sub.add_parser("info", help="show a store's manifest")
    info_cmd.add_argument("store")
    info_cmd.add_argument("--verify", action="store_true",
                          help="re-hash every chunk against the manifest")
    info_cmd.add_argument("--chunks", action="store_true",
                          help="also list the per-chunk index")
    info_cmd.set_defaults(fn=_cmd_store_info)

    cat_cmd = store_sub.add_parser("cat", help="stream a store out as trace CSV")
    cat_cmd.add_argument("store")
    cat_cmd.add_argument("-o", "--output", required=True)
    cat_cmd.set_defaults(fn=_cmd_store_cat)

    sstats_cmd = store_sub.add_parser(
        "stats", help="out-of-core statistics via the streaming summaries"
    )
    sstats_cmd.add_argument("store")
    sstats_cmd.add_argument("--chunk-rows", type=int, default=None,
                            help="re-chunk the stream (default: stored chunks)")
    sstats_cmd.set_defaults(fn=_cmd_store_stats)

    repair_cmd = store_sub.add_parser(
        "repair", help="quarantine/rebuild damaged chunks, finalize crashed writes"
    )
    repair_cmd.add_argument("store")
    repair_cmd.add_argument("--source", default=None, metavar="TRACE.csv",
                            help="original trace, for checksum-verified rebuilds")
    repair_cmd.set_defaults(fn=_cmd_store_repair)

    from repro.faults import PROFILES

    faults = sub.add_parser(
        "faults", help="replay an app under a seeded device fault plan"
    )
    faults.add_argument("app", choices=ALL_TRACES, metavar="APP")
    faults.add_argument("--profile", choices=sorted(PROFILES), default="flaky")
    faults.add_argument("--seed", type=int, default=20150614)
    faults.add_argument("--requests", type=int, default=None)
    faults.add_argument("--power-loss-at", type=int, default=None, metavar="EVENT",
                        help="cut power before the EVENT-th kernel event, then recover")
    faults.set_defaults(fn=_cmd_faults)

    replay = sub.add_parser(
        "replay", help="replay an app with telemetry and export the trace"
    )
    replay.add_argument("app", choices=ALL_TRACES, metavar="APP")
    replay.add_argument("--requests", type=int, default=None)
    replay.add_argument("--seed", type=int, default=20150614)
    replay.add_argument("--telemetry", default=None, metavar="OUT.json",
                        help="write a Chrome-trace JSON (chrome://tracing)")
    replay.add_argument("--span-store", default=None, metavar="DIR",
                        help="pack the spans into a columnar span store")
    replay.add_argument("--flame", action="store_true",
                        help="print the text flame summary")
    replay.add_argument("-f", "--force", action="store_true",
                        help="replace an existing span store at the destination")
    replay.set_defaults(fn=_cmd_replay)

    experiments = sub.add_parser(
        "experiments",
        help="run the paper's experiments (parallel engine + result cache)",
        add_help=False,  # everything is forwarded to repro-experiments
    )
    experiments.add_argument("rest", nargs=argparse.REMAINDER)
    experiments.set_defaults(fn=_cmd_experiments)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "experiments":
        # Forward verbatim (argparse's REMAINDER mis-handles a leading
        # option such as ``experiments --list``).
        return _cmd_experiments_argv(argv[1:])
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
