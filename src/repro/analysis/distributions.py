"""Bucketed distributions: Figs. 4, 5, 6 and 7 of the paper.

Each figure is a per-application stacked histogram; here a distribution is
a ``{bucket label: fraction}`` dict over the paper's bucket edges (see
:mod:`repro.workloads.buckets`).
"""

from __future__ import annotations

from typing import Dict

from repro.trace import Trace, US_PER_MS
from repro.workloads.buckets import (
    INTERARRIVAL_BUCKETS_MS,
    RESPONSE_BUCKETS_MS,
    SIZE_BUCKETS,
    histogram,
)


def size_distribution(trace: Trace) -> Dict[str, float]:
    """Fig. 4 / Fig. 7a: request size histogram (fractions per bucket)."""
    return histogram([request.size for request in trace], SIZE_BUCKETS)


def response_distribution(trace: Trace) -> Dict[str, float]:
    """Fig. 5 / Fig. 7b: response-time histogram, for a replayed trace."""
    values = [
        request.response_us / US_PER_MS for request in trace if request.completed
    ]
    return histogram(values, RESPONSE_BUCKETS_MS)


def interarrival_distribution(trace: Trace) -> Dict[str, float]:
    """Fig. 6 / Fig. 7c: inter-arrival-time histogram."""
    values = [gap / US_PER_MS for gap in trace.inter_arrival_us()]
    return histogram(values, INTERARRIVAL_BUCKETS_MS)


def small_request_share(trace: Trace) -> float:
    """Fraction of single-page (<= 4 KB) requests (Characteristic 2)."""
    return size_distribution(trace).get("<=4K", 0.0)


def long_gap_share(trace: Trace, threshold_ms: float = 16.0) -> float:
    """Fraction of inter-arrival gaps above ``threshold_ms`` (Char. 6)."""
    gaps = trace.inter_arrival_us()
    if not gaps:
        return 0.0
    return sum(1 for gap in gaps if gap > threshold_ms * US_PER_MS) / len(gaps)
