"""Bucketed distributions: Figs. 4, 5, 6 and 7 of the paper.

Each figure is a per-application stacked histogram; here a distribution is
a ``{bucket label: fraction}`` dict over the paper's bucket edges (see
:mod:`repro.workloads.buckets`).

Thin adapter: the three distribution kernels live in
:mod:`repro.metrics.histograms` (one definition, three engines); the
derived shares (Characteristics 2 and 6) stay here as whole-trace
conveniences.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.metrics.histograms import (
    INTERARRIVAL_DISTRIBUTION,
    RESPONSE_DISTRIBUTION,
    SIZE_DISTRIBUTION,
)
from repro.trace import Trace, US_PER_MS

__all__ = [
    "size_distribution",
    "response_distribution",
    "interarrival_distribution",
    "small_request_share",
    "long_gap_share",
]


def size_distribution(trace: Trace) -> Dict[str, float]:
    """Fig. 4 / Fig. 7a: request size histogram (fractions per bucket)."""
    return SIZE_DISTRIBUTION.batch(trace.columns())


def response_distribution(trace: Trace) -> Dict[str, float]:
    """Fig. 5 / Fig. 7b: response-time histogram, for a replayed trace."""
    return RESPONSE_DISTRIBUTION.batch(trace.columns())


def interarrival_distribution(trace: Trace) -> Dict[str, float]:
    """Fig. 6 / Fig. 7c: inter-arrival-time histogram."""
    return INTERARRIVAL_DISTRIBUTION.batch(trace.columns())


def small_request_share(trace: Trace) -> float:
    """Fraction of single-page (<= 4 KB) requests (Characteristic 2)."""
    return size_distribution(trace).get("<=4K", 0.0)


def long_gap_share(trace: Trace, threshold_ms: float = 16.0) -> float:
    """Fraction of inter-arrival gaps above ``threshold_ms`` (Char. 6)."""
    gaps = trace.columns().inter_arrival_us
    if not gaps.size:
        return 0.0
    return int(np.count_nonzero(gaps > threshold_ms * US_PER_MS)) / gaps.size
