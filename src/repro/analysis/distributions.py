"""Bucketed distributions: Figs. 4, 5, 6 and 7 of the paper.

Each figure is a per-application stacked histogram; here a distribution is
a ``{bucket label: fraction}`` dict over the paper's bucket edges (see
:mod:`repro.workloads.buckets`).

All three distributions are computed columnar: the value vector comes
straight from the trace's struct-of-arrays view (sizes, ``complete_us -
arrival_us`` over the completed mask, ``np.diff`` of arrivals) and
:func:`~repro.workloads.buckets.histogram` bins it vectorized.  The
``_reference_*`` request-loop twins are the bit-identity oracles.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.trace import Trace, US_PER_MS
from repro.workloads.buckets import (
    INTERARRIVAL_BUCKETS_MS,
    RESPONSE_BUCKETS_MS,
    SIZE_BUCKETS,
    _reference_histogram,
    histogram,
)


def size_distribution(trace: Trace) -> Dict[str, float]:
    """Fig. 4 / Fig. 7a: request size histogram (fractions per bucket)."""
    return histogram(trace.columns().size, SIZE_BUCKETS)


def response_distribution(trace: Trace) -> Dict[str, float]:
    """Fig. 5 / Fig. 7b: response-time histogram, for a replayed trace."""
    columns = trace.columns()
    values = columns.response_us[columns.completed_mask] / US_PER_MS
    return histogram(values, RESPONSE_BUCKETS_MS)


def interarrival_distribution(trace: Trace) -> Dict[str, float]:
    """Fig. 6 / Fig. 7c: inter-arrival-time histogram."""
    return histogram(trace.columns().inter_arrival_us / US_PER_MS, INTERARRIVAL_BUCKETS_MS)


def small_request_share(trace: Trace) -> float:
    """Fraction of single-page (<= 4 KB) requests (Characteristic 2)."""
    return size_distribution(trace).get("<=4K", 0.0)


def long_gap_share(trace: Trace, threshold_ms: float = 16.0) -> float:
    """Fraction of inter-arrival gaps above ``threshold_ms`` (Char. 6)."""
    gaps = trace.columns().inter_arrival_us
    if not gaps.size:
        return 0.0
    return int(np.count_nonzero(gaps > threshold_ms * US_PER_MS)) / gaps.size


# -- scalar reference oracles (kept for the vectorized-kernel test suite) -----


def _reference_size_distribution(trace: Trace) -> Dict[str, float]:
    return _reference_histogram([request.size for request in trace], SIZE_BUCKETS)


def _reference_response_distribution(trace: Trace) -> Dict[str, float]:
    values = [
        request.response_us / US_PER_MS for request in trace if request.completed
    ]
    return _reference_histogram(values, RESPONSE_BUCKETS_MS)


def _reference_interarrival_distribution(trace: Trace) -> Dict[str, float]:
    arrivals = [r.arrival_us for r in trace.requests]
    values = [(b - a) / US_PER_MS for a, b in zip(arrivals, arrivals[1:])]
    return _reference_histogram(values, INTERARRIVAL_BUCKETS_MS)


def _reference_long_gap_share(trace: Trace, threshold_ms: float = 16.0) -> float:
    arrivals = [r.arrival_us for r in trace.requests]
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    if not gaps:
        return 0.0
    return sum(1 for gap in gaps if gap > threshold_ms * US_PER_MS) / len(gaps)
