"""Timing-related trace characterization (Table IV).

Thin adapter: the kernel lives in :mod:`repro.metrics.timing` (one
definition, three engines); this module keeps the whole-trace
convenience signature the analysis layer has always offered.
"""

from __future__ import annotations

from repro.metrics.timing import TIMING_STATS, TimingStats
from repro.trace import Trace

__all__ = ["TimingStats", "timing_stats"]


def timing_stats(trace: Trace) -> TimingStats:
    """Compute every Table IV column for ``trace``.

    The service/response/no-wait columns need device timestamps; pass a
    trace that was replayed on an :class:`~repro.emmc.device.EmmcDevice`
    (they are reported as 0 for an un-replayed trace, like the localities
    of an empty trace).
    """
    return TIMING_STATS.batch(trace.columns(), trace.name)
