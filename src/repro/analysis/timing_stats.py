"""Timing-related trace characterization (Table IV)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace import Trace, US_PER_MS

from .locality import measure as measure_localities


@dataclass(frozen=True)
class TimingStats:
    """The measured counterpart of one Table IV row."""

    name: str
    duration_s: float
    arrival_rate: float
    access_rate_kib_s: float
    nowait_pct: float
    mean_service_ms: float
    mean_response_ms: float
    spatial_locality_pct: float
    temporal_locality_pct: float
    mean_interarrival_ms: float


def timing_stats(trace: Trace) -> TimingStats:
    """Compute every Table IV column for ``trace``.

    The service/response/no-wait columns need device timestamps; pass a
    trace that was replayed on an :class:`~repro.emmc.device.EmmcDevice`
    (they are reported as 0 for an un-replayed trace, like the localities
    of an empty trace).
    """
    localities = measure_localities(trace)
    completed = [request for request in trace if request.completed]
    gaps = trace.inter_arrival_us()
    mean_gap_ms = (sum(gaps) / len(gaps) / US_PER_MS) if gaps else 0.0
    if completed:
        nowait_pct = 100.0 * sum(1 for r in completed if r.no_wait) / len(completed)
        mean_service_ms = sum(r.service_us for r in completed) / len(completed) / US_PER_MS
        mean_response_ms = sum(r.response_us for r in completed) / len(completed) / US_PER_MS
    else:
        nowait_pct = mean_service_ms = mean_response_ms = 0.0
    return TimingStats(
        name=trace.name,
        duration_s=trace.duration_s,
        arrival_rate=trace.arrival_rate(),
        access_rate_kib_s=trace.access_rate_kib_s(),
        nowait_pct=nowait_pct,
        mean_service_ms=mean_service_ms,
        mean_response_ms=mean_response_ms,
        spatial_locality_pct=localities.spatial_pct,
        temporal_locality_pct=localities.temporal_pct,
        mean_interarrival_ms=mean_gap_ms,
    )
