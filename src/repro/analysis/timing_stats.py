"""Timing-related trace characterization (Table IV)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace import Trace, US_PER_MS, sequential_sum

from .locality import measure as measure_localities


@dataclass(frozen=True)
class TimingStats:
    """The measured counterpart of one Table IV row."""

    name: str
    duration_s: float
    arrival_rate: float
    access_rate_kib_s: float
    nowait_pct: float
    mean_service_ms: float
    mean_response_ms: float
    spatial_locality_pct: float
    temporal_locality_pct: float
    mean_interarrival_ms: float


def timing_stats(trace: Trace) -> TimingStats:
    """Compute every Table IV column for ``trace``.

    The service/response/no-wait columns need device timestamps; pass a
    trace that was replayed on an :class:`~repro.emmc.device.EmmcDevice`
    (they are reported as 0 for an un-replayed trace, like the localities
    of an empty trace).

    The columnar kernel reproduces the request-loop reference
    (:func:`_reference_timing_stats`) bit for bit: time differences are
    the same element-wise IEEE operations, counts are exact, and every
    float mean uses :func:`~repro.trace.sequential_sum` (left-to-right,
    exactly like ``sum()``) before repeating the reference's scalar
    divisions.
    """
    localities = measure_localities(trace)
    columns = trace.columns()
    gaps = columns.inter_arrival_us
    mean_gap_ms = (
        (sequential_sum(gaps) / gaps.size / US_PER_MS) if gaps.size else 0.0
    )
    completed_mask = columns.completed_mask
    num_completed = int(np.count_nonzero(completed_mask))
    if num_completed:
        wait = columns.wait_us[completed_mask]
        nowait = int(np.count_nonzero(wait <= 1e-6))
        nowait_pct = 100.0 * nowait / num_completed
        mean_service_ms = (
            sequential_sum(columns.service_us[completed_mask]) / num_completed / US_PER_MS
        )
        mean_response_ms = (
            sequential_sum(columns.response_us[completed_mask]) / num_completed / US_PER_MS
        )
    else:
        nowait_pct = mean_service_ms = mean_response_ms = 0.0
    return TimingStats(
        name=trace.name,
        duration_s=trace.duration_s,
        arrival_rate=trace.arrival_rate(),
        access_rate_kib_s=trace.access_rate_kib_s(),
        nowait_pct=nowait_pct,
        mean_service_ms=mean_service_ms,
        mean_response_ms=mean_response_ms,
        spatial_locality_pct=localities.spatial_pct,
        temporal_locality_pct=localities.temporal_pct,
        mean_interarrival_ms=mean_gap_ms,
    )


def _reference_timing_stats(trace: Trace) -> TimingStats:
    """Request-loop implementation of :func:`timing_stats` (test oracle)."""
    from .locality import _reference_spatial_locality, _reference_temporal_locality, Localities

    localities = Localities(
        spatial=_reference_spatial_locality(trace),
        temporal=_reference_temporal_locality(trace),
    )
    completed = [request for request in trace if request.completed]
    arrivals = [r.arrival_us for r in trace.requests]
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    mean_gap_ms = (sum(gaps) / len(gaps) / US_PER_MS) if gaps else 0.0
    if completed:
        nowait_pct = 100.0 * sum(1 for r in completed if r.no_wait) / len(completed)
        mean_service_ms = sum(r.service_us for r in completed) / len(completed) / US_PER_MS
        mean_response_ms = sum(r.response_us for r in completed) / len(completed) / US_PER_MS
    else:
        nowait_pct = mean_service_ms = mean_response_ms = 0.0
    return TimingStats(
        name=trace.name,
        duration_s=trace.duration_s,
        arrival_rate=trace.arrival_rate(),
        access_rate_kib_s=trace.access_rate_kib_s(),
        nowait_pct=nowait_pct,
        mean_service_ms=mean_service_ms,
        mean_response_ms=mean_response_ms,
        spatial_locality_pct=localities.spatial_pct,
        temporal_locality_pct=localities.temporal_pct,
        mean_interarrival_ms=mean_gap_ms,
    )
