"""Latency percentile utilities (tail behaviour behind Fig. 5)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

import numpy as np

from repro.trace import Trace, US_PER_MS

DEFAULT_PERCENTILES: Sequence[float] = (50.0, 90.0, 95.0, 99.0)


def response_percentiles_ms(
    trace: Trace, percentiles: Sequence[float] = DEFAULT_PERCENTILES
) -> Dict[float, float]:
    """Response-time percentiles of a replayed trace, milliseconds."""
    columns = trace.columns()
    return _percentiles(columns.response_us[columns.completed_mask], percentiles)


def service_percentiles_ms(
    trace: Trace, percentiles: Sequence[float] = DEFAULT_PERCENTILES
) -> Dict[float, float]:
    """Service-time percentiles of a replayed trace, milliseconds."""
    columns = trace.columns()
    return _percentiles(columns.service_us[columns.completed_mask], percentiles)


def _percentiles(
    values: Union[List[float], np.ndarray], percentiles: Sequence[float]
) -> Dict[float, float]:
    for p in percentiles:
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} out of range")
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        return {p: 0.0 for p in percentiles}
    array = array / US_PER_MS
    return {p: float(np.percentile(array, p)) for p in percentiles}


def cdf(values: Sequence[float]) -> List[tuple]:
    """Empirical CDF points (value, fraction <= value), sorted by value."""
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]
