"""Spatial and temporal locality, per the paper's definitions (Section III-C).

* Spatial locality: the percentage of sequential request accesses over the
  total number of requests.  "A sequential request access happens when the
  starting address of the current request is next to the ending address of
  its predecessor."
* Temporal locality: the percentage of address hits out of the total number
  of requests, where the hit count "is increased by one when an address is
  re-accessed."

Both measures are integer counts over the LBA column, so the vectorized
kernels (shifted-array equality for spatial, ``np.unique`` for temporal)
are exactly -- not approximately -- equal to the request-loop reference
implementations retained as ``_reference_*`` oracles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

import numpy as np

from repro.trace import Trace


@dataclass(frozen=True)
class Localities:
    """Measured localities of a trace, as fractions in [0, 1]."""

    spatial: float
    temporal: float

    @property
    def spatial_pct(self) -> float:
        """Spatial locality as a percentage."""
        return self.spatial * 100.0

    @property
    def temporal_pct(self) -> float:
        """Temporal locality as a percentage."""
        return self.temporal * 100.0


def spatial_locality(trace: Trace) -> float:
    """Fraction of requests that start exactly at their predecessor's end."""
    total = len(trace)
    if total == 0:
        return 0.0
    columns = trace.columns()
    lba, size = columns.lba, columns.size
    sequential = int(np.count_nonzero(lba[1:] == lba[:-1] + size[:-1]))
    return sequential / total


def temporal_locality(trace: Trace) -> float:
    """Fraction of requests whose start address was accessed before.

    The first occurrence of each distinct address is a miss and every
    re-occurrence a hit, so ``hits = n - #distinct`` -- one ``np.unique``
    instead of a per-request set walk.
    """
    total = len(trace)
    if total == 0:
        return 0.0
    hits = total - int(np.unique(trace.columns().lba).size)
    return hits / total


def measure(trace: Trace) -> Localities:
    """Both localities in one pass-friendly call."""
    return Localities(spatial=spatial_locality(trace), temporal=temporal_locality(trace))


# -- scalar reference oracles (kept for the vectorized-kernel test suite) -----


def _reference_spatial_locality(trace: Trace) -> float:
    """Request-loop implementation of :func:`spatial_locality`."""
    if len(trace) == 0:
        return 0.0
    sequential = sum(
        1
        for previous, current in zip(trace.requests, trace.requests[1:])
        if current.lba == previous.end_lba
    )
    return sequential / len(trace)


def _reference_temporal_locality(trace: Trace) -> float:
    """Request-loop implementation of :func:`temporal_locality`."""
    if len(trace) == 0:
        return 0.0
    seen: Set[int] = set()
    hits = 0
    for request in trace:
        if request.lba in seen:
            hits += 1
        seen.add(request.lba)
    return hits / len(trace)
