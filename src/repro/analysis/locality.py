"""Spatial and temporal locality, per the paper's definitions (Section III-C).

Thin adapter: the kernels live in :mod:`repro.metrics.locality` (one
definition, three engines); this module keeps the whole-trace
convenience signatures the analysis layer has always offered.
"""

from __future__ import annotations

from repro.metrics.locality import (
    LOCALITIES,
    Localities,
    SPATIAL_LOCALITY,
    TEMPORAL_LOCALITY,
)
from repro.trace import Trace

__all__ = ["Localities", "measure", "spatial_locality", "temporal_locality"]


def spatial_locality(trace: Trace) -> float:
    """Fraction of requests that start exactly at their predecessor's end."""
    return SPATIAL_LOCALITY.batch(trace.columns())


def temporal_locality(trace: Trace) -> float:
    """Fraction of requests whose start address was accessed before."""
    return TEMPORAL_LOCALITY.batch(trace.columns())


def measure(trace: Trace) -> Localities:
    """Both localities in one pass-friendly call."""
    return LOCALITIES.batch(trace.columns())
