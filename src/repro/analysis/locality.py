"""Spatial and temporal locality, per the paper's definitions (Section III-C).

* Spatial locality: the percentage of sequential request accesses over the
  total number of requests.  "A sequential request access happens when the
  starting address of the current request is next to the ending address of
  its predecessor."
* Temporal locality: the percentage of address hits out of the total number
  of requests, where the hit count "is increased by one when an address is
  re-accessed."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from repro.trace import Trace


@dataclass(frozen=True)
class Localities:
    """Measured localities of a trace, as fractions in [0, 1]."""

    spatial: float
    temporal: float

    @property
    def spatial_pct(self) -> float:
        """Spatial locality as a percentage."""
        return self.spatial * 100.0

    @property
    def temporal_pct(self) -> float:
        """Temporal locality as a percentage."""
        return self.temporal * 100.0


def spatial_locality(trace: Trace) -> float:
    """Fraction of requests that start exactly at their predecessor's end."""
    if len(trace) == 0:
        return 0.0
    sequential = sum(
        1
        for previous, current in zip(trace.requests, trace.requests[1:])
        if current.lba == previous.end_lba
    )
    return sequential / len(trace)


def temporal_locality(trace: Trace) -> float:
    """Fraction of requests whose start address was accessed before."""
    if len(trace) == 0:
        return 0.0
    seen: Set[int] = set()
    hits = 0
    for request in trace:
        if request.lba in seen:
            hits += 1
        seen.add(request.lba)
    return hits / len(trace)


def measure(trace: Trace) -> Localities:
    """Both localities in one pass-friendly call."""
    return Localities(spatial=spatial_locality(trace), temporal=temporal_locality(trace))
