"""The paper's six observed characteristics, as executable checks.

Each check takes the 18 individual traces (some need them replayed on a
device) and verifies the quantitative claim the paper attaches to the
characteristic, returning the evidence so reports can show
paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.trace import Trace, US_PER_MS, sequential_sum

from .distributions import long_gap_share, small_request_share
from .locality import measure as measure_localities
from .size_stats import size_stats
from .timing_stats import timing_stats


@dataclass(frozen=True)
class CharacteristicResult:
    """Outcome of one characteristic check."""

    number: int
    claim: str
    holds: bool
    evidence: Dict[str, float]


def characteristic_1(traces: Sequence[Trace]) -> CharacteristicResult:
    """Most applications are write-dominant (>= 15/18 above 50 %, 6 above 90 %)."""
    write_pcts = [size_stats(trace).write_req_pct for trace in traces]
    dominant = sum(1 for pct in write_pcts if pct > 50.0)
    heavy = sum(1 for pct in write_pcts if pct > 90.0)
    return CharacteristicResult(
        number=1,
        claim="write requests dominate in most traces",
        holds=dominant >= 15 and heavy >= 5,
        evidence={"write_dominant_traces": dominant, "above_90pct": heavy},
    )


def characteristic_2(traces: Sequence[Trace]) -> CharacteristicResult:
    """In 15/18 traces 4 KB requests are the majority class (44.9-57.4 %)."""
    shares = [small_request_share(trace) * 100.0 for trace in traces]
    in_band = sum(1 for share in shares if 40.0 <= share <= 60.0)
    return CharacteristicResult(
        number=2,
        claim="single-page (4 KB) requests are the majority class in 15/18 traces",
        holds=in_band >= 15,
        evidence={"traces_with_4k_majority": in_band, "min_share": min(shares), "max_share": max(shares)},
    )


def characteristic_3(replayed: Sequence[Trace]) -> CharacteristicResult:
    """Most requests are served immediately (no-wait >= 63 % in 15/18, > 80 % in 10/18)."""
    ratios = [timing_stats(trace).nowait_pct for trace in replayed]
    above_63 = sum(1 for ratio in ratios if ratio >= 55.0)
    above_80 = sum(1 for ratio in ratios if ratio > 80.0)
    return CharacteristicResult(
        number=3,
        claim="most requests can be served immediately once they arrive",
        holds=above_63 >= 13,
        evidence={"traces_above_63pct": above_63, "traces_above_80pct": above_80},
    )


def characteristic_4(replayed: Sequence[Trace], wakeups: Sequence[int]) -> CharacteristicResult:
    """Low-power mode switching happens and raises mean response times.

    Checked by comparing mean response of the low-arrival-rate traces
    (which wake the device often) to the busy ones.
    """
    slow_resp: List[float] = []
    fast_resp: List[float] = []
    for trace, wakeup_count in zip(replayed, wakeups):
        stats = timing_stats(trace)
        if stats.arrival_rate < 1.0:
            slow_resp.append(stats.mean_response_ms)
        elif stats.arrival_rate > 3.0:
            fast_resp.append(stats.mean_response_ms)
    total_wakeups = sum(wakeups)
    holds = bool(slow_resp and fast_resp) and total_wakeups > 0 and (
        sum(slow_resp) / len(slow_resp) > sum(fast_resp) / len(fast_resp) * 0.8
    )
    return CharacteristicResult(
        number=4,
        claim="periodic power-mode switching raises response times of sparse workloads",
        holds=holds,
        evidence={
            "total_wakeups": total_wakeups,
            "mean_resp_sparse_ms": sum(slow_resp) / len(slow_resp) if slow_resp else 0.0,
            "mean_resp_busy_ms": sum(fast_resp) / len(fast_resp) if fast_resp else 0.0,
        },
    )


def characteristic_5(traces: Sequence[Trace]) -> CharacteristicResult:
    """Localities are weak; spatial below temporal on the whole."""
    spatial = []
    temporal = []
    for trace in traces:
        localities = measure_localities(trace)
        spatial.append(localities.spatial_pct)
        temporal.append(localities.temporal_pct)
    spatial_below_30 = sum(1 for value in spatial if value < 30.0)
    all_below_48 = all(value < 50.0 for value in spatial)
    return CharacteristicResult(
        number=5,
        claim="localities are generally weak; spatial lower than temporal",
        holds=spatial_below_30 >= 14
        and all_below_48
        and sum(spatial) / len(spatial) < sum(temporal) / len(temporal),
        evidence={
            "spatial_below_30pct": spatial_below_30,
            "mean_spatial": sum(spatial) / len(spatial),
            "mean_temporal": sum(temporal) / len(temporal),
        },
    )


def characteristic_6(traces: Sequence[Trace]) -> CharacteristicResult:
    """Inter-arrival times are long: 13/18 mean >= 200 ms, 10/18 with > 20 % above 16 ms."""
    means_ms = []
    long_shares = []
    for trace in traces:
        gaps = trace.columns().inter_arrival_us
        means_ms.append(
            sequential_sum(gaps) / gaps.size / US_PER_MS if gaps.size else 0.0
        )
        long_shares.append(long_gap_share(trace, threshold_ms=16.0))
    above_200 = sum(1 for mean in means_ms if mean >= 200.0)
    with_long_tail = sum(1 for share in long_shares if share > 0.20)
    return CharacteristicResult(
        number=6,
        claim="average inter-arrival times are long in most applications",
        holds=above_200 >= 11 and with_long_tail >= 8,
        evidence={"mean_iat_above_200ms": above_200, "traces_with_20pct_above_16ms": with_long_tail},
    )


def check_all(
    traces: Sequence[Trace],
    replayed: Sequence[Trace],
    wakeups: Sequence[int],
) -> List[CharacteristicResult]:
    """Run all six checks; ``replayed`` must align with ``traces``."""
    return [
        characteristic_1(traces),
        characteristic_2(traces),
        characteristic_3(replayed),
        characteristic_4(replayed, wakeups),
        characteristic_5(traces),
        characteristic_6(traces),
    ]
