"""Plain-text table rendering for the experiment harness.

The experiments print the same rows the paper's tables and figures report;
this module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table.

    Floats are shown with two decimals; everything else via ``str``.
    """
    formatted_rows: List[List[str]] = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in formatted_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in formatted_rows:
        lines.append(" | ".join(cell.rjust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_histogram_table(
    names: Sequence[str],
    histograms: Sequence[dict],
    title: Optional[str] = None,
) -> str:
    """Render per-application bucket histograms (Fig. 4/5/6 style), in %."""
    if not histograms:
        return title or ""
    labels = list(histograms[0].keys())
    rows = [
        [name] + [100.0 * histogram.get(label, 0.0) for label in labels]
        for name, histogram in zip(names, histograms)
    ]
    return render_table(["App"] + labels, rows, title=title)
