"""Size/response-time correlation (Section III-C).

"We find that the response time distributions are strongly correlated to
the request size distributions.  The high correlation indicates that the
response time of a request is largely determined by its size, which
further implies that there are few requests waiting in the request queue."

This module quantifies that claim per trace with Spearman rank correlation
(robust to the heavy-tailed size distribution) between each completed
request's size and its response time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.trace import Trace


@dataclass(frozen=True)
class SizeResponseCorrelation:
    """Correlation result for one trace."""

    name: str
    spearman: float
    pearson: float
    samples: int

    @property
    def strongly_correlated(self) -> bool:
        """The paper's qualitative judgement, operationalized at rho>=0.5."""
        return self.spearman >= 0.5


def _rank(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties get the mean of their rank span).

    Vectorized tie handling: after a stable argsort, tie-group boundaries
    are the positions where the sorted values change; each group of span
    ``[start, end)`` receives the rank ``(start + end - 1) / 2`` -- the
    same integer expression the scalar tie loop evaluated, so the float
    ranks are bit-identical (oracle: ``tests/analysis/oracles.py``).
    """
    n = len(values)
    if n == 0:
        return np.empty(0, dtype=np.float64)
    order = np.argsort(values, kind="mergesort")
    sorted_values = values[order]
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    np.not_equal(sorted_values[1:], sorted_values[:-1], out=starts[1:])
    group_starts = np.flatnonzero(starts)
    group_ends = np.append(group_starts[1:], n)
    averaged = (group_starts + group_ends - 1) / 2.0
    ranks = np.empty(n, dtype=np.float64)
    ranks[order] = np.repeat(averaged, group_ends - group_starts)
    return ranks


def _safe_corrcoef(x: np.ndarray, y: np.ndarray) -> float:
    if len(x) < 2 or np.std(x) == 0 or np.std(y) == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def size_response_correlation(trace: Trace, use_service: bool = False) -> SizeResponseCorrelation:
    """Spearman and Pearson correlation of size vs response time.

    With ``use_service`` the correlation targets the device service time
    instead -- the physical half of the paper's claim (the rest of the
    response is queueing, which the high no-wait ratios make small).
    """
    columns = trace.columns()
    completed_mask = columns.completed_mask
    samples = int(np.count_nonzero(completed_mask))
    if samples < 2:
        return SizeResponseCorrelation(trace.name, 0.0, 0.0, samples)
    sizes = columns.size[completed_mask].astype(np.float64)
    responses = (columns.service_us if use_service else columns.response_us)[
        completed_mask
    ]
    spearman = _safe_corrcoef(_rank(sizes), _rank(responses))
    pearson = _safe_corrcoef(sizes, responses)
    return SizeResponseCorrelation(
        name=trace.name, spearman=spearman, pearson=pearson, samples=samples
    )


def correlations(traces: List[Trace]) -> List[SizeResponseCorrelation]:
    """Per-trace correlations, in input order."""
    return [size_response_correlation(trace) for trace in traces]


def mean_spearman(traces: List[Trace]) -> Optional[float]:
    """Average Spearman rho across traces with enough samples."""
    values = [c.spearman for c in correlations(traces) if c.samples >= 10]
    return float(np.mean(values)) if values else None
