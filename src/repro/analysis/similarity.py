"""Distribution-shape similarity (the Fig. 5 correlation claim).

"We find that the response time distributions are strongly correlated to
the request size distributions" -- a statement about the *shapes of the
per-application histograms*, e.g. Movie's 16-64 KB size hump reappearing
as a 4-8 ms response hump.  We quantify it two ways:

* :func:`histogram_cosine` -- cosine similarity between one app's size
  histogram and its response histogram (both are 6-vectors over ordered
  buckets, so a hump in the same relative position scores high);
* :func:`rank_alignment` -- Spearman correlation across applications
  between the *mean size bucket index* and the *mean response bucket
  index* (apps with bigger requests respond slower).

Both measures consume the columnar (vectorized) histograms from
:mod:`repro.analysis.distributions`; the cosine/rank arithmetic itself
stays scalar on purpose -- it runs over six-bucket vectors, and keeping
the reference summation order preserves bit-identity of the reports.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.trace import Trace

from .correlation import _rank, _safe_corrcoef
from .distributions import response_distribution, size_distribution


def _smooth(vector: Sequence[float]) -> List[float]:
    """[0.25, 0.5, 0.25] kernel: tolerate a one-bucket shift between the
    size and time axes (their bucket edges are not commensurate)."""
    smoothed = []
    for index in range(len(vector)):
        left = vector[index - 1] if index > 0 else 0.0
        right = vector[index + 1] if index + 1 < len(vector) else 0.0
        smoothed.append(0.25 * left + 0.5 * vector[index] + 0.25 * right)
    return smoothed


def histogram_cosine(
    first: Dict[str, float], second: Dict[str, float], smooth: bool = True
) -> float:
    """Cosine similarity between two bucket histograms (order-aligned).

    Both histograms are taken as vectors in their own bucket order; they
    must have the same number of buckets.  With ``smooth`` (default) both
    vectors pass through a small blur first, so a hump landing one bucket
    off on the other axis still scores as similar.
    """
    a = list(first.values())
    b = list(second.values())
    if len(a) != len(b):
        raise ValueError("histograms must have the same number of buckets")
    if smooth:
        a = _smooth(a)
        b = _smooth(b)
    dot = sum(x * y for x, y in zip(a, b))
    norm = math.sqrt(sum(x * x for x in a)) * math.sqrt(sum(y * y for y in b))
    return dot / norm if norm else 0.0


def _mean_bucket_index(histogram: Dict[str, float]) -> float:
    return sum(index * share for index, share in enumerate(histogram.values()))


def size_response_similarity(trace: Trace) -> float:
    """Cosine similarity of one trace's size and response histograms."""
    return histogram_cosine(size_distribution(trace), response_distribution(trace))


def rank_alignment(traces: Sequence[Trace]) -> float:
    """Across apps: do bigger-request apps have slower responses?

    Returns the Spearman correlation between per-app mean size bucket and
    mean response bucket (1.0 = perfectly aligned rankings).
    """
    import numpy as np

    sizes: List[float] = []
    responses: List[float] = []
    for trace in traces:
        sizes.append(_mean_bucket_index(size_distribution(trace)))
        responses.append(_mean_bucket_index(response_distribution(trace)))
    if len(traces) < 2:
        return 0.0
    return _safe_corrcoef(
        _rank(np.asarray(sizes)), _rank(np.asarray(responses))
    )
