"""Size-related trace characterization (Table III)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace import KIB, Trace


@dataclass(frozen=True)
class SizeStats:
    """The measured counterpart of one Table III row."""

    name: str
    data_size_kib: float
    num_requests: int
    max_size_kib: float
    avg_size_kib: float
    avg_read_kib: float
    avg_write_kib: float
    write_req_pct: float
    write_size_pct: float


def size_stats(trace: Trace) -> SizeStats:
    """Compute every Table III column for ``trace``.

    Averages over an empty class (e.g. a trace with no reads) are reported
    as 0, mirroring how a column would be blank in the paper's table.

    All reductions here are exact integer sums/counts over the ``size``
    column, so this columnar kernel is bit-identical to the request-loop
    reference (:func:`_reference_size_stats`); the final per-column
    divisions repeat the reference's scalar expressions verbatim.
    """
    total_requests = len(trace)
    if total_requests == 0:
        return SizeStats(trace.name, 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    columns = trace.columns()
    size = columns.size
    write_mask = columns.write_mask
    total = int(size.sum())
    written = int(size[write_mask].sum())
    num_writes = int(np.count_nonzero(write_mask))
    num_reads = total_requests - num_writes
    read_total = total - written
    return SizeStats(
        name=trace.name,
        data_size_kib=total / KIB,
        num_requests=total_requests,
        max_size_kib=int(size.max()) / KIB,
        avg_size_kib=total / total_requests / KIB,
        avg_read_kib=(read_total / num_reads / KIB) if num_reads else 0.0,
        avg_write_kib=(written / num_writes / KIB) if num_writes else 0.0,
        write_req_pct=100.0 * num_writes / total_requests,
        write_size_pct=100.0 * written / total if total else 0.0,
    )


def _reference_size_stats(trace: Trace) -> SizeStats:
    """Request-loop implementation of :func:`size_stats` (test oracle)."""
    if len(trace) == 0:
        return SizeStats(trace.name, 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    sizes = [request.size for request in trace]
    read_sizes = [request.size for request in trace if request.is_read]
    write_sizes = [request.size for request in trace if request.is_write]
    total = sum(sizes)
    written = sum(write_sizes)
    return SizeStats(
        name=trace.name,
        data_size_kib=total / KIB,
        num_requests=len(trace),
        max_size_kib=max(sizes) / KIB,
        avg_size_kib=total / len(sizes) / KIB,
        avg_read_kib=(sum(read_sizes) / len(read_sizes) / KIB) if read_sizes else 0.0,
        avg_write_kib=(written / len(write_sizes) / KIB) if write_sizes else 0.0,
        write_req_pct=100.0 * len(write_sizes) / len(sizes),
        write_size_pct=100.0 * written / total if total else 0.0,
    )
