"""Size-related trace characterization (Table III)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace import KIB, Trace


@dataclass(frozen=True)
class SizeStats:
    """The measured counterpart of one Table III row."""

    name: str
    data_size_kib: float
    num_requests: int
    max_size_kib: float
    avg_size_kib: float
    avg_read_kib: float
    avg_write_kib: float
    write_req_pct: float
    write_size_pct: float


def size_stats(trace: Trace) -> SizeStats:
    """Compute every Table III column for ``trace``.

    Averages over an empty class (e.g. a trace with no reads) are reported
    as 0, mirroring how a column would be blank in the paper's table.
    """
    if len(trace) == 0:
        return SizeStats(trace.name, 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    sizes = [request.size for request in trace]
    read_sizes = [request.size for request in trace if request.is_read]
    write_sizes = [request.size for request in trace if request.is_write]
    total = sum(sizes)
    written = sum(write_sizes)
    return SizeStats(
        name=trace.name,
        data_size_kib=total / KIB,
        num_requests=len(trace),
        max_size_kib=max(sizes) / KIB,
        avg_size_kib=total / len(sizes) / KIB,
        avg_read_kib=(sum(read_sizes) / len(read_sizes) / KIB) if read_sizes else 0.0,
        avg_write_kib=(written / len(write_sizes) / KIB) if write_sizes else 0.0,
        write_req_pct=100.0 * len(write_sizes) / len(sizes),
        write_size_pct=100.0 * written / total if total else 0.0,
    )
