"""Size-related trace characterization (Table III).

Thin adapter: the kernel lives in :mod:`repro.metrics.size` (one
definition, three engines); this module keeps the whole-trace
convenience signature the analysis layer has always offered.
"""

from __future__ import annotations

from repro.metrics.size import SIZE_STATS, SizeStats
from repro.trace import Trace

__all__ = ["SizeStats", "size_stats"]


def size_stats(trace: Trace) -> SizeStats:
    """Compute every Table III column for ``trace``.

    Averages over an empty class (e.g. a trace with no reads) are reported
    as 0, mirroring how a column would be blank in the paper's table.
    """
    return SIZE_STATS.batch(trace.columns(), trace.name)
