"""Throughput versus request size (Fig. 3).

The paper derives Fig. 3 from its traces: for each request size, the
average access rate of requests with that size.  We reproduce the device
side directly: issue back-to-back requests of one size at the device and
measure sustained MB/s, sweeping the sizes the figure covers (4 KB ..
256 KB for reads -- the largest read seen in the traces -- and 4 KB ..
16 MB for writes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.trace import KIB, MIB, Op, OP_WRITE, Request, SECTOR, US_PER_S, sequential_sum
from repro.emmc.device import DeviceConfig, EmmcDevice

#: Fig. 3's x axis, bytes.  Reads stop at 256 KB ("the largest size of a
#: read request is 256 KB"), writes continue to 16 MB.
READ_SIZES: Sequence[int] = (
    4 * KIB, 8 * KIB, 16 * KIB, 32 * KIB, 64 * KIB, 128 * KIB, 256 * KIB,
)
WRITE_SIZES: Sequence[int] = READ_SIZES + (
    512 * KIB, 1 * MIB, 2 * MIB, 4 * MIB, 8 * MIB, 16 * MIB,
)


@dataclass(frozen=True)
class ThroughputPoint:
    """Sustained throughput at one request size."""

    size_bytes: int
    mb_per_s: float


def measure_throughput(
    config: DeviceConfig,
    op: Op,
    sizes: Sequence[int],
    total_bytes_per_point: int = 32 * MIB,
) -> List[ThroughputPoint]:
    """Sustained throughput for back-to-back requests of each size.

    A fresh device is used per size; requests arrive with zero think time
    so the device is never idle (the measurement regime Fig. 3 implies for
    its per-size averages).  Sequential addressing exercises the packing-
    friendly path, like the large packed requests the paper observed.
    """
    points: List[ThroughputPoint] = []
    for size in sizes:
        device = EmmcDevice(config)
        count = max(4, total_bytes_per_point // size)
        # Wrap inside half the device so long write sweeps overwrite their
        # own data (reclaimable by GC) instead of exhausting the space.
        window = max(size, device.capacity_bytes // 2 // size * size)
        lba = 0
        finish = 0.0
        start_of_first = None
        for _ in range(count):
            request = Request(arrival_us=finish, lba=lba, size=size, op=op)
            completed = device.submit(request)
            if start_of_first is None:
                start_of_first = completed.arrival_us
            finish = completed.finish_us
            lba = (lba + size) % window
        elapsed_s = (finish - (start_of_first or 0.0)) / US_PER_S
        points.append(
            ThroughputPoint(size_bytes=size, mb_per_s=count * size / 1e6 / elapsed_s)
        )
    return points


def throughput_curves(
    config: DeviceConfig,
    read_sizes: Sequence[int] = READ_SIZES,
    write_sizes: Sequence[int] = WRITE_SIZES,
    total_bytes_per_point: int = 32 * MIB,
) -> Dict[str, List[ThroughputPoint]]:
    """Both Fig. 3 curves for one device configuration."""
    return {
        "read": measure_throughput(config, Op.READ, read_sizes, total_bytes_per_point),
        "write": measure_throughput(config, Op.WRITE, write_sizes, total_bytes_per_point),
    }


def trace_throughput_by_size(traces, op: Op) -> Dict[int, float]:
    """The paper's own Fig. 3 construction: per-size average access rate.

    For every request size found in replayed ``traces``, the average rate
    (size / response time) over all requests of that size and type, MB/s.

    Columnar: sizes/rates of the eligible requests are concatenated in
    trace order, then each size class is reduced with an in-order
    :func:`~repro.trace.sequential_sum` -- exactly the accumulation order
    the reference dict loop (:func:`_reference_trace_throughput_by_size`)
    performs, so the per-size means are bit-identical.
    """
    op_code = OP_WRITE if op is Op.WRITE else 0
    size_chunks: List[np.ndarray] = []
    rate_chunks: List[np.ndarray] = []
    for trace in traces:
        columns = trace.columns()
        response = columns.response_us
        with np.errstate(invalid="ignore"):
            eligible = (columns.op == op_code) & columns.completed_mask & (response > 0)
        size_chunks.append(columns.size[eligible])
        rate_chunks.append(columns.size[eligible] / response[eligible])
    if not size_chunks:
        return {}
    sizes = np.concatenate(size_chunks)
    rates = np.concatenate(rate_chunks)
    result: Dict[int, float] = {}
    for size in np.unique(sizes):
        group = rates[sizes == size]
        result[int(size)] = sequential_sum(group) / int(group.size)
    return result


def _reference_trace_throughput_by_size(traces, op: Op) -> Dict[int, float]:
    """Request-loop implementation of :func:`trace_throughput_by_size`."""
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for trace in traces:
        for request in trace:
            if request.op is not op or not request.completed:
                continue
            if request.response_us <= 0:
                continue
            rate = request.size / request.response_us  # bytes/us == MB/s
            sums[request.size] = sums.get(request.size, 0.0) + rate
            counts[request.size] = counts.get(request.size, 0) + 1
    return {size: sums[size] / counts[size] for size in sorted(sums)}
