"""Throughput versus request size (Fig. 3).

The paper derives Fig. 3 from its traces: for each request size, the
average access rate of requests with that size.  We reproduce the device
side directly: issue back-to-back requests of one size at the device and
measure sustained MB/s, sweeping the sizes the figure covers (4 KB ..
256 KB for reads -- the largest read seen in the traces -- and 4 KB ..
16 MB for writes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.trace import KIB, MIB, Op, Request, US_PER_S
from repro.emmc.device import DeviceConfig, EmmcDevice

#: Fig. 3's x axis, bytes.  Reads stop at 256 KB ("the largest size of a
#: read request is 256 KB"), writes continue to 16 MB.
READ_SIZES: Sequence[int] = (
    4 * KIB, 8 * KIB, 16 * KIB, 32 * KIB, 64 * KIB, 128 * KIB, 256 * KIB,
)
WRITE_SIZES: Sequence[int] = READ_SIZES + (
    512 * KIB, 1 * MIB, 2 * MIB, 4 * MIB, 8 * MIB, 16 * MIB,
)


@dataclass(frozen=True)
class ThroughputPoint:
    """Sustained throughput at one request size."""

    size_bytes: int
    mb_per_s: float


def measure_throughput(
    config: DeviceConfig,
    op: Op,
    sizes: Sequence[int],
    total_bytes_per_point: int = 32 * MIB,
) -> List[ThroughputPoint]:
    """Sustained throughput for back-to-back requests of each size.

    A fresh device is used per size; requests arrive with zero think time
    so the device is never idle (the measurement regime Fig. 3 implies for
    its per-size averages).  Sequential addressing exercises the packing-
    friendly path, like the large packed requests the paper observed.
    """
    points: List[ThroughputPoint] = []
    for size in sizes:
        device = EmmcDevice(config)
        count = max(4, total_bytes_per_point // size)
        # Wrap inside half the device so long write sweeps overwrite their
        # own data (reclaimable by GC) instead of exhausting the space.
        window = max(size, device.capacity_bytes // 2 // size * size)
        lba = 0
        finish = 0.0
        start_of_first = None
        for _ in range(count):
            request = Request(arrival_us=finish, lba=lba, size=size, op=op)
            completed = device.submit(request)
            if start_of_first is None:
                start_of_first = completed.arrival_us
            finish = completed.finish_us
            lba = (lba + size) % window
        elapsed_s = (finish - (start_of_first or 0.0)) / US_PER_S
        points.append(
            ThroughputPoint(size_bytes=size, mb_per_s=count * size / 1e6 / elapsed_s)
        )
    return points


def throughput_curves(
    config: DeviceConfig,
    read_sizes: Sequence[int] = READ_SIZES,
    write_sizes: Sequence[int] = WRITE_SIZES,
    total_bytes_per_point: int = 32 * MIB,
) -> Dict[str, List[ThroughputPoint]]:
    """Both Fig. 3 curves for one device configuration."""
    return {
        "read": measure_throughput(config, Op.READ, read_sizes, total_bytes_per_point),
        "write": measure_throughput(config, Op.WRITE, write_sizes, total_bytes_per_point),
    }


def trace_throughput_by_size(traces, op: Op) -> Dict[int, float]:
    """The paper's own Fig. 3 construction: per-size average access rate.

    For every request size found in replayed ``traces``, the average rate
    (size / response time) over all requests of that size and type, MB/s.
    Thin adapter over the registered per-op metric in
    :mod:`repro.metrics.throughput`.
    """
    from repro.metrics.throughput import THROUGHPUT_BY_SIZE_READ, THROUGHPUT_BY_SIZE_WRITE

    metric = THROUGHPUT_BY_SIZE_WRITE if op is Op.WRITE else THROUGHPUT_BY_SIZE_READ
    return metric.batch_traces([trace.columns() for trace in traces])
