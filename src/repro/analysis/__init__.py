"""Trace characterization: the paper's Tables III/IV and Figs. 3-7."""

from .characteristics import (
    CharacteristicResult,
    characteristic_1,
    characteristic_2,
    characteristic_3,
    characteristic_4,
    characteristic_5,
    characteristic_6,
    check_all,
)
from .correlation import (
    SizeResponseCorrelation,
    correlations,
    mean_spearman,
    size_response_correlation,
)
from .similarity import histogram_cosine, rank_alignment, size_response_similarity
from .distributions import (
    interarrival_distribution,
    long_gap_share,
    response_distribution,
    size_distribution,
    small_request_share,
)
from .percentiles import cdf, response_percentiles_ms, service_percentiles_ms
from .locality import Localities, measure, spatial_locality, temporal_locality
from .report import render_histogram_table, render_table
from .size_stats import SizeStats, size_stats
from .throughput import (
    READ_SIZES,
    ThroughputPoint,
    WRITE_SIZES,
    measure_throughput,
    throughput_curves,
    trace_throughput_by_size,
)
from .timing_stats import TimingStats, timing_stats

__all__ = [
    "CharacteristicResult",
    "characteristic_1",
    "characteristic_2",
    "characteristic_3",
    "characteristic_4",
    "characteristic_5",
    "characteristic_6",
    "check_all",
    "SizeResponseCorrelation",
    "correlations",
    "mean_spearman",
    "size_response_correlation",
    "histogram_cosine",
    "rank_alignment",
    "size_response_similarity",
    "interarrival_distribution",
    "long_gap_share",
    "response_distribution",
    "size_distribution",
    "small_request_share",
    "cdf",
    "response_percentiles_ms",
    "service_percentiles_ms",
    "Localities",
    "measure",
    "spatial_locality",
    "temporal_locality",
    "render_histogram_table",
    "render_table",
    "SizeStats",
    "size_stats",
    "READ_SIZES",
    "ThroughputPoint",
    "WRITE_SIZES",
    "measure_throughput",
    "throughput_curves",
    "trace_throughput_by_size",
    "TimingStats",
    "timing_stats",
]
