"""Deterministic fault plans and the per-component injector.

A :class:`FaultPlan` is a frozen description of *what can go wrong* in a
simulation: transient flash read errors (corrected by a bounded ECC retry
loop), program/erase failures (blocks retired into a spare pool), an
abrupt power loss at a chosen event index, and torn chunk writes in the
on-disk trace store.  Plans are pure data -- they carry rates, limits and
one seed -- and every random decision is drawn from a **named stream**
derived as ``sha256("faults:<seed>:<label>")``, the same discipline
:class:`repro.android.stack.AndroidStack` uses for its app streams:

* a stream depends only on its label and the seed, never on how many
  draws another stream has consumed, so enabling (say) read faults does
  not perturb the program-failure decisions;
* the consuming components draw in simulated-event order, which the
  kernel makes identical run-to-run, process-to-process and across
  ``PYTHONHASHSEED`` values -- so a fault run is exactly as reproducible
  as a fault-free one.

Stream labels in use::

    read      transient read-failure draws (one per read attempt)
    program   page-program failure draws (one per host/GC program)
    erase     block-erase failure draws (one per erase)
    store     torn-write / corruption placement in repro.faults.store

:meth:`FaultPlan.none` is the identity plan: every rate is zero and no
power loss is scheduled.  A device built with it takes the exact same
code path as one built with no plan at all (the injector reports
``device_active == False`` and is dropped), which is what keeps every
experiment digest and golden bit-identical -- the test suite and CI
prove this.

Layering: this module depends only on numpy/hashlib so that
``repro.emmc`` (and ``repro.store``) can consume plans without import
cycles; the replay harness that needs the device lives in
:mod:`repro.faults.replay`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

import numpy as np


class FaultError(RuntimeError):
    """A fault-injection scenario reached an unrecoverable state."""


class SparePoolExhausted(FaultError):
    """A plane retired more blocks than its spare pool could replace."""


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, fully deterministic description of the faults to inject.

    Attributes:
        seed: root seed every named stream is derived from.
        read_error_rate: probability a single flash read *attempt* fails
            transiently (ECC-uncorrectable on that attempt).
        read_retry_limit: retries after the initial failed read before
            the sector is declared uncorrectable.
        read_retry_backoff_us: backoff before retry ``k`` (1-based) is
            ``k * read_retry_backoff_us`` -- modeled as kernel timer
            events, so retries are visible in the event trace.
        program_error_rate: probability one page program fails; the block
            is retired (bad-block remap) and the program is redone on a
            freshly mapped block.
        erase_error_rate: probability a block erase fails; the block is
            retired instead of returning to the free pool.
        spare_blocks_per_plane: replacement blocks available per
            (plane, page-kind) pool; when exhausted the next retirement
            raises :class:`SparePoolExhausted`.
        power_loss_at_event: cut a replay before the kernel fires this
            event index (0-based, counted from device creation); ``None``
            disables power loss.
        power_loss_recovery_us: simulated remount latency charged between
            the cut and the first post-recovery arrival.
    """

    seed: int = 0
    read_error_rate: float = 0.0
    read_retry_limit: int = 3
    read_retry_backoff_us: float = 100.0
    program_error_rate: float = 0.0
    erase_error_rate: float = 0.0
    spare_blocks_per_plane: int = 4
    power_loss_at_event: Optional[int] = None
    power_loss_recovery_us: float = 5000.0

    def __post_init__(self) -> None:
        for name in ("read_error_rate", "program_error_rate", "erase_error_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        if self.read_retry_limit < 0:
            raise ValueError("read_retry_limit must be non-negative")
        if self.read_retry_backoff_us < 0:
            raise ValueError("read_retry_backoff_us must be non-negative")
        if self.spare_blocks_per_plane < 0:
            raise ValueError("spare_blocks_per_plane must be non-negative")
        if self.power_loss_at_event is not None and self.power_loss_at_event < 0:
            raise ValueError("power_loss_at_event must be non-negative")
        if self.power_loss_recovery_us < 0:
            raise ValueError("power_loss_recovery_us must be non-negative")

    # -- construction ---------------------------------------------------------

    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """The identity plan: inject nothing (bit-identical replays)."""
        return cls(seed=seed)

    @classmethod
    def profile(cls, name: str, seed: int = 0) -> "FaultPlan":
        """A named fault profile (the CLI's ``--profile`` values)."""
        try:
            overrides = PROFILES[name]
        except KeyError:
            known = ", ".join(sorted(PROFILES))
            raise ValueError(f"unknown fault profile {name!r} (known: {known})")
        return cls(seed=seed, **overrides)

    def with_overrides(self, **changes) -> "FaultPlan":
        """Copy with some fields replaced."""
        return replace(self, **changes)

    # -- which subsystems does this plan touch? -------------------------------

    @property
    def read_active(self) -> bool:
        """True when transient read failures can occur."""
        return self.read_error_rate > 0.0

    @property
    def program_active(self) -> bool:
        """True when program failures can occur."""
        return self.program_error_rate > 0.0

    @property
    def erase_active(self) -> bool:
        """True when erase failures can occur."""
        return self.erase_error_rate > 0.0

    @property
    def device_active(self) -> bool:
        """True when the plan perturbs the device at all.

        A device handed an inactive plan drops it entirely, so
        :meth:`none` provably changes nothing -- no stream is ever
        created, no draw ever taken, no branch ever entered.
        """
        return self.read_active or self.program_active or self.erase_active

    # -- streams --------------------------------------------------------------

    def stream(self, label: str) -> np.random.Generator:
        """A named, independent random stream derived from (seed, label)."""
        digest = hashlib.sha256(f"faults:{self.seed}:{label}".encode()).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "big"))

    def injector(self) -> "FaultInjector":
        """A fresh injector (stateful stream cursors) over this plan."""
        return FaultInjector(self)

    def describe(self) -> str:
        """One-line human summary for CLI output."""
        parts = [f"seed={self.seed}"]
        if self.read_active:
            parts.append(
                f"read={self.read_error_rate:g} (retries<={self.read_retry_limit}, "
                f"backoff {self.read_retry_backoff_us:g}us)"
            )
        if self.program_active:
            parts.append(f"program={self.program_error_rate:g}")
        if self.erase_active:
            parts.append(f"erase={self.erase_error_rate:g}")
        if self.power_loss_at_event is not None:
            parts.append(f"power-loss@event {self.power_loss_at_event}")
        if len(parts) == 1:
            parts.append("no faults")
        return ", ".join(parts)


#: Named profiles for the CLI and the ``REPRO_FAULT_PROFILE`` env hook.
#: ``none`` is deliberately a *constructed* plan (not the absence of one):
#: passing it through the whole stack and still getting bit-identical
#: results is the inertness proof CI runs.
PROFILES: Dict[str, Dict[str, object]] = {
    "none": {},
    "transient-reads": {"read_error_rate": 0.05},
    "wearout": {"program_error_rate": 0.02, "erase_error_rate": 0.02,
                "spare_blocks_per_plane": 8},
    "flaky": {"read_error_rate": 0.02, "program_error_rate": 0.01,
              "erase_error_rate": 0.01, "spare_blocks_per_plane": 8},
}


class FaultInjector:
    """Stateful draw cursors over a plan's named streams.

    One injector lives for the lifetime of one device (surviving
    :meth:`~repro.emmc.device.EmmcDevice.recover`, so post-recovery draws
    continue the same streams -- a replay with a power loss at event *k*
    is a single deterministic trajectory, not two reseeded halves).
    """

    __slots__ = ("plan", "_streams")

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._streams: Dict[str, np.random.Generator] = {}

    def _stream(self, label: str) -> np.random.Generator:
        stream = self._streams.get(label)
        if stream is None:
            stream = self.plan.stream(label)
            self._streams[label] = stream
        return stream

    # -- device-side draws ----------------------------------------------------

    @property
    def read_active(self) -> bool:
        return self.plan.read_active

    @property
    def program_active(self) -> bool:
        return self.plan.program_active

    @property
    def erase_active(self) -> bool:
        return self.plan.erase_active

    def read_failures(self) -> int:
        """Failed attempts for one page read, drawn attempt by attempt.

        Returns ``f <= read_retry_limit`` when attempt ``f + 1``
        succeeded (``0`` = clean first read), or ``read_retry_limit + 1``
        when every allowed attempt failed -- an uncorrectable read.
        """
        rate = self.plan.read_error_rate
        stream = self._stream("read")
        failures = 0
        while failures <= self.plan.read_retry_limit and stream.random() < rate:
            failures += 1
        return failures

    def program_fails(self) -> bool:
        """Whether the next page program fails (one draw)."""
        return self._stream("program").random() < self.plan.program_error_rate

    def erase_fails(self) -> bool:
        """Whether the next block erase fails (one draw)."""
        return self._stream("erase").random() < self.plan.erase_error_rate
