"""repro.faults: seeded, deterministic fault injection.

Public surface:

* :class:`FaultPlan` / :class:`FaultInjector` -- pure-data plans and the
  named-stream draw cursors (:mod:`repro.faults.plan`).
* :func:`replay_with_faults` / :func:`stats_digest` -- the replay harness
  that cuts power, recovers the device and resumes
  (:mod:`repro.faults.replay`).
* torn-write / corruption injectors for the chunked trace store
  (:mod:`repro.faults.store`).

Layering: ``plan`` sits below ``repro.emmc`` and ``repro.store`` (they
receive plans/injectors but never import this package); ``replay`` and
``store`` sit above them.  The heavyweight exports are loaded lazily so
``from repro.faults import FaultPlan`` does not drag in the device model.
"""

from .plan import PROFILES, FaultError, FaultInjector, FaultPlan, SparePoolExhausted

__all__ = [
    "PROFILES",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultReplayResult",
    "SparePoolExhausted",
    "StoreDamage",
    "corrupt_chunk",
    "replay_with_faults",
    "stats_digest",
    "tear_chunk",
]

_LAZY = {
    "FaultReplayResult": "repro.faults.replay",
    "replay_with_faults": "repro.faults.replay",
    "stats_digest": "repro.faults.replay",
    "StoreDamage": "repro.faults.store",
    "corrupt_chunk": "repro.faults.store",
    "tear_chunk": "repro.faults.store",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
