"""Deterministic damage injectors for chunked trace stores.

These are the storage-side counterpart of the device fault hooks: given
a :class:`~repro.faults.plan.FaultPlan`, they damage a packed store in a
seed-reproducible way so the repair tests (and ``repro-trace store
repair`` demos) exercise exactly the failure shapes the store's
crash-consistency machinery claims to handle:

* :func:`tear_chunk` -- truncate a chunk file to a prefix, the signature
  of a torn write (process killed / power lost mid-``write``);
* :func:`corrupt_chunk` -- flip one byte at a ``plan.stream("store")``-
  chosen offset, the signature of silent bit rot.

Both locate chunks through the manifest (falling back to a killed
writer's journal), never by globbing, so they damage only what the
store's own index believes exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from .plan import FaultPlan


@dataclass(frozen=True)
class StoreDamage:
    """What one injector call did (for test assertions and logs)."""

    file: str
    kind: str  # "torn" or "corrupt"
    offset: int
    original_nbytes: int
    damaged_nbytes: int


def _chunk_index_entries(store_dir: Path) -> List:
    """The store's chunk index: manifest if present, else the journal."""
    # Imported here so repro.faults stays importable without repro.store
    # (the device-side fault path has no storage dependency).
    from repro.store.manifest import (
        StoreError,
        journal_path,
        manifest_path,
        read_journal,
        read_manifest,
    )

    if manifest_path(store_dir).is_file():
        return read_manifest(store_dir).chunks
    if journal_path(store_dir).is_file():
        return read_journal(store_dir).chunks
    raise StoreError(f"{store_dir!s} has no manifest or journal to locate chunks")


def tear_chunk(
    store_dir: Union[str, Path],
    chunk_index: int = -1,
    keep_bytes: Optional[int] = None,
    drop_manifest: bool = False,
) -> StoreDamage:
    """Truncate one chunk file to a prefix (a torn write).

    ``keep_bytes`` defaults to half the file; ``drop_manifest=True``
    additionally deletes the manifest, turning the directory into the
    "killed writer" shape (journal-only) when a journal is present.
    """
    store_dir = Path(store_dir)
    chunks = _chunk_index_entries(store_dir)
    info = chunks[chunk_index]
    path = store_dir / info.file
    original = path.stat().st_size
    keep = original // 2 if keep_bytes is None else int(keep_bytes)
    if not 0 <= keep < original:
        raise ValueError(f"keep_bytes must be in [0, {original}); got {keep}")
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    if drop_manifest:
        from repro.store.manifest import manifest_path

        manifest_file = manifest_path(store_dir)
        if manifest_file.exists():
            manifest_file.unlink()
    return StoreDamage(
        file=info.file,
        kind="torn",
        offset=keep,
        original_nbytes=original,
        damaged_nbytes=keep,
    )


def corrupt_chunk(
    store_dir: Union[str, Path],
    plan: FaultPlan,
    chunk_index: Optional[int] = None,
) -> StoreDamage:
    """Flip one byte of one chunk file at a seed-chosen position.

    The chunk (when ``chunk_index`` is ``None``) and the byte offset are
    drawn from ``plan.stream("store")``, so the same plan always damages
    the same byte of the same file -- corruption tests are replayable.
    """
    store_dir = Path(store_dir)
    chunks = _chunk_index_entries(store_dir)
    stream = plan.stream("store")
    if chunk_index is None:
        chunk_index = int(stream.integers(0, len(chunks)))
    info = chunks[chunk_index]
    path = store_dir / info.file
    original = path.stat().st_size
    if original == 0:
        raise ValueError(f"{info.file} is empty; nothing to corrupt")
    offset = int(stream.integers(0, original))
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        # XOR with 0xFF always changes the byte, whatever its value.
        handle.write(bytes([byte ^ 0xFF]))
    return StoreDamage(
        file=info.file,
        kind="corrupt",
        offset=offset,
        original_nbytes=original,
        damaged_nbytes=original,
    )
