"""Replay traces under a fault plan, surviving a mid-replay power loss.

The harness is the fault-injection analogue of :meth:`repro.sim.Host.replay`:
every request is scheduled as an ``ARRIVAL`` event, the kernel is drained,
and -- when the plan schedules a power loss -- the drain is cut by
:class:`repro.sim.SimInterrupt` at the chosen event index, the device runs
its :meth:`~repro.emmc.device.EmmcDevice.recover` path, and the requests
whose arrival events never fired are re-armed and served to completion.

Cut semantics (event granularity): kernel events are atomic, so a request
is either fully served (its ``ARRIVAL`` fired, its timing is fixed) or
untouched.  Because arrivals fire in trace order, the unserved requests
are always a suffix of the trace.  Resubmitted requests arrive at
``max(original arrival, recovery instant)`` -- the host retries them as
soon as the device is back, never before their original time.

Everything is deterministic: the fault injector's stream cursors survive
the recovery (one trajectory, not two reseeded halves), re-arming happens
in trace order, and :func:`stats_digest` canonicalizes the resulting
``DeviceStats`` so tests can compare runs across worker counts, processes
and ``PYTHONHASHSEED`` values byte for byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.emmc import DeviceConfig, EmmcDevice
from repro.emmc.device import RecoveryReport
from repro.emmc.stats import DeviceStats
from repro.sim import SimInterrupt
from repro.trace import Request, Trace

from .plan import FaultPlan


@dataclass
class FaultReplayResult:
    """A replay that may have survived injected faults and a power loss."""

    trace: Trace
    stats: DeviceStats
    config_name: str
    plan: FaultPlan
    #: True when the plan's power loss actually cut the replay (False when
    #: ``power_loss_at_event`` was None or beyond the last event).
    interrupted: bool
    #: The device's recovery report, when a power loss occurred.
    recovery: Optional[RecoveryReport]
    #: Requests re-armed after recovery (always a suffix of the trace).
    resubmitted: int
    #: Kernel event trace tuples ``(time_us, priority, seq, kind, label)``
    #: (``record_events=True`` only).  After a power loss this holds the
    #: *post-recovery* events -- the pre-cut kernel, like the real
    #: device's volatile state, is gone.
    events: List = field(default_factory=list)


def replay_with_faults(
    config: DeviceConfig,
    trace: Trace,
    plan: FaultPlan,
    record_events: bool = False,
) -> FaultReplayResult:
    """Replay ``trace`` on a fresh device built with ``plan``.

    With ``FaultPlan.none()`` this is behaviourally identical to
    ``Host(EmmcDevice(config)).replay(trace)`` -- the plan is dropped by
    the device and no cut is armed.
    """
    device = EmmcDevice(config, faults=plan)
    device.kernel.record_events = record_events
    requests = list(trace.without_timing())
    boxes: List[List[Request]] = []
    for request in requests:
        box: List[Request] = []
        boxes.append(box)
        device.arrive(request, record_to=box)
    if plan.power_loss_at_event is not None:
        device.kernel.interrupt_before(plan.power_loss_at_event)

    interrupted = False
    recovery: Optional[RecoveryReport] = None
    resubmitted = 0
    try:
        device.kernel.drain()
    except SimInterrupt:
        interrupted = True
        recovery = device.recover(
            at_us=device.kernel.now_us + plan.power_loss_recovery_us
        )
        for index, request in enumerate(requests):
            if boxes[index]:
                continue
            revived = replace(
                request, arrival_us=max(request.arrival_us, recovery.resumed_us)
            )
            device.arrive(revived, record_to=boxes[index])
            resubmitted += 1
        device.kernel.drain()

    completed = [box[0] for box in boxes if box]
    if len(completed) != len(requests):
        raise RuntimeError(
            f"replay served {len(completed)} of {len(requests)} requests"
        )
    return FaultReplayResult(
        trace=trace.with_requests(completed),
        stats=device.stats,
        config_name=config.name,
        plan=plan,
        interrupted=interrupted,
        recovery=recovery,
        resubmitted=resubmitted,
        events=list(device.kernel.event_trace) if record_events else [],
    )


def stats_digest(stats: DeviceStats) -> str:
    """Canonical sha256 of a :class:`DeviceStats` (determinism oracle).

    Every field is serialized: per-kind dicts are keyed by the kind's
    name and sorted, float lists ride through ``json.dumps``'s shortest
    ``repr`` (bit-faithful for round-trippable doubles), and key order is
    fixed -- so two runs digest equal iff their stats are value-identical.
    """
    payload = {}
    for key, value in vars(stats).items():
        if isinstance(value, dict):
            payload[key] = {
                kind.name: count
                for kind, count in sorted(value.items(), key=lambda item: item[0].name)
            }
        else:
            payload[key] = value
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()
