"""Compatibility shim: the streaming histogram states moved to
:mod:`repro.metrics.histograms` (the unified metric-kernel layer).

The ``Streaming*`` names are aliases of the moved state classes; they
keep existing imports and pickled experiment shard payloads resolving.
"""

from repro.metrics.histograms import (
    HistogramState as StreamingHistogram,
    InterarrivalHistogramState as StreamingInterarrivalHistogram,
    ResponseHistogramState as StreamingResponseHistogram,
    SizeHistogramState as StreamingSizeHistogram,
)

__all__ = [
    "StreamingHistogram",
    "StreamingInterarrivalHistogram",
    "StreamingResponseHistogram",
    "StreamingSizeHistogram",
]
