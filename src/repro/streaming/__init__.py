"""Single-pass, mergeable streaming analytics over chunked trace streams.

Since the unified metric-kernel layer (:mod:`repro.metrics`) landed,
this package is a thin facade: the per-statistic streaming states are
defined once next to their batch kernels in ``repro/metrics/`` and
re-exported here under their historical ``Streaming*`` names, and
:class:`StreamingTraceSummary` drives the registry's summary metric set
through the generic :class:`~repro.metrics.driver.MetricSetState`.

The protocol is unchanged:

* ``update(chunk)`` folds the next :class:`~repro.trace.TraceColumns`
  chunk in (chunks must arrive in stream order);
* ``merge(other)`` absorbs the summary of the stream segment that
  immediately follows this one (shard-and-merge trees);
* ``finalize(...)`` returns the *exact* object the corresponding batch
  kernel produces -- bit-identical floats, not just approximately equal
  (see :mod:`repro.metrics.reductions` for how float folds stay exact
  across chunking and merging).

The summaries pair with :mod:`repro.store` for out-of-core analysis:
``summarize_store`` folds a memory-mapped store chunk by chunk with O(1)
float state, so traces far larger than RAM reduce to the same numbers
the in-memory kernels give.
"""

from .histograms import (
    StreamingHistogram,
    StreamingInterarrivalHistogram,
    StreamingResponseHistogram,
    StreamingSizeHistogram,
)
from .locality import (
    StreamingLocalities,
    StreamingSpatialLocality,
    StreamingTemporalLocality,
)
from .reductions import OrderedSum, chunked
from .size import StreamingSizeStats
from .summary import (
    DEFAULT_SUMMARY_CHUNK_ROWS,
    StreamingTraceSummary,
    TraceSummary,
    summarize_chunks,
    summarize_store,
    summarize_trace,
)
from .throughput import StreamingThroughputBySize
from .timing import NO_WAIT_TOLERANCE_US, StreamingNoWait, StreamingTimingStats

__all__ = [
    "StreamingHistogram",
    "StreamingInterarrivalHistogram",
    "StreamingResponseHistogram",
    "StreamingSizeHistogram",
    "StreamingLocalities",
    "StreamingSpatialLocality",
    "StreamingTemporalLocality",
    "OrderedSum",
    "chunked",
    "StreamingSizeStats",
    "DEFAULT_SUMMARY_CHUNK_ROWS",
    "StreamingTraceSummary",
    "TraceSummary",
    "summarize_chunks",
    "summarize_store",
    "summarize_trace",
    "StreamingThroughputBySize",
    "NO_WAIT_TOLERANCE_US",
    "StreamingNoWait",
    "StreamingTimingStats",
]
