"""Compatibility shim: the float-fold machinery moved to
:mod:`repro.metrics.reductions` (the unified metric-kernel layer).

This module re-exports the moved names so existing imports -- and
pickles that recorded the old dotted paths -- keep resolving.
"""

from repro.metrics.reductions import OrderedSum, chunked

__all__ = ["OrderedSum", "chunked"]
