"""One-pass trace summary: everything Tables III/IV and Figs. 4-6 need.

:class:`StreamingTraceSummary` bundles every per-trace streaming summary
into a single object with the same ``update(chunk)`` / ``merge(other)`` /
``finalize(name)`` protocol, so one pass over a trace store (or one
shard-and-merge tree over its chunks) yields the exact
:class:`~repro.analysis.size_stats.SizeStats`,
:class:`~repro.analysis.timing_stats.TimingStats` and bucketed
distributions the batch kernels compute from an in-memory
:class:`~repro.trace.Trace`.

Helpers: :func:`summarize_chunks` folds any chunk iterable (in stream
order), :func:`summarize_store` runs out-of-core over a
:class:`~repro.store.TraceStore` with O(1) float state
(``collapse=True``), and :func:`summarize_trace` is the in-memory
convenience wrapper used by the equality tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.analysis.size_stats import SizeStats
from repro.analysis.timing_stats import TimingStats
from repro.trace import Trace, TraceColumns

from .histograms import (
    StreamingInterarrivalHistogram,
    StreamingResponseHistogram,
    StreamingSizeHistogram,
)
from .reductions import chunked
from .size import StreamingSizeStats
from .timing import StreamingTimingStats

#: Default number of rows folded per step by the helpers below.
DEFAULT_SUMMARY_CHUNK_ROWS = 65536


@dataclass(frozen=True)
class TraceSummary:
    """Everything the streaming pass produces for one trace."""

    size: SizeStats
    timing: TimingStats
    size_distribution: Dict[str, float]
    response_distribution: Dict[str, float]
    interarrival_distribution: Dict[str, float]


class StreamingTraceSummary:
    """Single-pass, mergeable bundle of every per-trace statistic.

    ``collapse=True`` keeps the float folds O(1) for sequential
    out-of-core consumption; the default deferred form is mergeable
    across contiguous shard splits (see
    :class:`~repro.streaming.reductions.OrderedSum`).
    """

    __slots__ = ("size", "timing", "size_hist", "response_hist", "interarrival_hist")

    def __init__(self, collapse: bool = False) -> None:
        self.size = StreamingSizeStats()
        self.timing = StreamingTimingStats(collapse=collapse)
        self.size_hist = StreamingSizeHistogram()
        self.response_hist = StreamingResponseHistogram()
        self.interarrival_hist = StreamingInterarrivalHistogram()

    def update(self, chunk: TraceColumns) -> None:
        """Fold the next chunk (in stream order) in."""
        self.size.update(chunk)
        self.timing.update(chunk)
        self.size_hist.update(chunk)
        self.response_hist.update(chunk)
        self.interarrival_hist.update(chunk)

    def merge(self, other: "StreamingTraceSummary") -> None:
        """Absorb the summary of the stream segment following this one."""
        self.size.merge(other.size)
        self.timing.merge(other.timing)
        self.size_hist.merge(other.size_hist)
        self.response_hist.merge(other.response_hist)
        self.interarrival_hist.merge(other.interarrival_hist)

    def finalize(self, name: str) -> TraceSummary:
        """The exact objects the batch kernels return for this stream."""
        return TraceSummary(
            size=self.size.finalize(name),
            timing=self.timing.finalize(name),
            size_distribution=self.size_hist.finalize(),
            response_distribution=self.response_hist.finalize(),
            interarrival_distribution=self.interarrival_hist.finalize(),
        )


def summarize_chunks(
    chunks: Iterable[TraceColumns], name: str, collapse: bool = True
) -> TraceSummary:
    """Fold an in-order chunk iterable into one :class:`TraceSummary`."""
    summary = StreamingTraceSummary(collapse=collapse)
    for chunk in chunks:
        summary.update(chunk)
    return summary.finalize(name)


def summarize_store(
    store, chunk_rows: Optional[int] = None, name: Optional[str] = None
) -> TraceSummary:
    """Out-of-core summary of a :class:`~repro.store.TraceStore`.

    Chunks are memory-mapped one at a time and folded with O(1) float
    state; peak resident memory is one chunk plus the distinct-LBA set.
    """
    return summarize_chunks(
        store.iter_chunks(chunk_rows=chunk_rows),
        name=store.name if name is None else name,
        collapse=True,
    )


def summarize_trace(
    trace: Trace,
    chunk_rows: int = DEFAULT_SUMMARY_CHUNK_ROWS,
    collapse: bool = True,
) -> TraceSummary:
    """In-memory convenience wrapper (chunked through the same path)."""
    return summarize_chunks(
        chunked(trace.columns(), chunk_rows), name=trace.name, collapse=collapse
    )
