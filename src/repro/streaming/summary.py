"""One-pass trace summary: everything Tables III/IV and Figs. 4-6 need.

:class:`StreamingTraceSummary` folds the registry's summary metric set
(see :data:`repro.metrics.registry.SUMMARY_METRIC_NAMES`) over a chunk
stream via the generic :class:`~repro.metrics.driver.MetricSetState`
driver, keeping the familiar ``update(chunk)`` / ``merge(other)`` /
``finalize(name)`` protocol.  One pass over a trace store (or one
shard-and-merge tree over its chunks) yields the exact
:class:`~repro.metrics.size.SizeStats`,
:class:`~repro.metrics.timing.TimingStats` and bucketed distributions
the batch kernels compute from an in-memory :class:`~repro.trace.Trace`.

Helpers: :func:`summarize_chunks` folds any chunk iterable (in stream
order), :func:`summarize_store` runs out-of-core over a
:class:`~repro.store.TraceStore` with O(1) float state
(``collapse=True``), and :func:`summarize_trace` is the in-memory
convenience wrapper used by the equality tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.metrics.driver import MetricSetState
from repro.metrics.histograms import (
    InterarrivalHistogramState,
    ResponseHistogramState,
    SizeHistogramState,
)
from repro.metrics.registry import summary_metrics
from repro.metrics.reductions import chunked
from repro.metrics.size import SizeStats, SizeStatsState
from repro.metrics.timing import TimingStats, TimingStatsState
from repro.trace import Trace, TraceColumns

#: Default number of rows folded per step by the helpers below.
DEFAULT_SUMMARY_CHUNK_ROWS = 65536


@dataclass(frozen=True)
class TraceSummary:
    """Everything the streaming pass produces for one trace."""

    size: SizeStats
    timing: TimingStats
    size_distribution: Dict[str, float]
    response_distribution: Dict[str, float]
    interarrival_distribution: Dict[str, float]


class StreamingTraceSummary:
    """Single-pass, mergeable bundle of every per-trace statistic.

    A thin facade over the registry-driven
    :class:`~repro.metrics.driver.MetricSetState`: the per-metric state
    attributes (``.size``, ``.timing``, ...) remain addressable for
    callers that inspect mid-stream state (the CLI checks
    ``summary.timing.completed``).

    ``collapse=True`` keeps the float folds O(1) for sequential
    out-of-core consumption; the default deferred form is mergeable
    across contiguous shard splits (see
    :class:`~repro.metrics.reductions.OrderedSum`).
    """

    __slots__ = ("_state",)

    def __init__(self, collapse: bool = False) -> None:
        self._state = MetricSetState(summary_metrics(), collapse=collapse)

    def update(self, chunk: TraceColumns) -> None:
        """Fold the next chunk (in stream order) in."""
        self._state.update(chunk)

    def merge(self, other: "StreamingTraceSummary") -> None:
        """Absorb the summary of the stream segment following this one."""
        self._state.merge(other._state)

    def finalize(self, name: str) -> TraceSummary:
        """The exact objects the batch kernels return for this stream."""
        values = self._state.finalize(name)
        return TraceSummary(
            size=values["size_stats"],
            timing=values["timing_stats"],
            size_distribution=values["size_distribution"],
            response_distribution=values["response_distribution"],
            interarrival_distribution=values["interarrival_distribution"],
        )

    # -- per-metric state access (pre-refactor attribute names) ---------------

    @property
    def size(self) -> SizeStatsState:
        return self._state.states["size_stats"]

    @property
    def timing(self) -> TimingStatsState:
        return self._state.states["timing_stats"]

    @property
    def size_hist(self) -> SizeHistogramState:
        return self._state.states["size_distribution"]

    @property
    def response_hist(self) -> ResponseHistogramState:
        return self._state.states["response_distribution"]

    @property
    def interarrival_hist(self) -> InterarrivalHistogramState:
        return self._state.states["interarrival_distribution"]


def summarize_chunks(
    chunks: Iterable[TraceColumns], name: str, collapse: bool = True
) -> TraceSummary:
    """Fold an in-order chunk iterable into one :class:`TraceSummary`."""
    summary = StreamingTraceSummary(collapse=collapse)
    for chunk in chunks:
        summary.update(chunk)
    return summary.finalize(name)


def summarize_store(
    store, chunk_rows: Optional[int] = None, name: Optional[str] = None
) -> TraceSummary:
    """Out-of-core summary of a :class:`~repro.store.TraceStore`.

    Chunks are memory-mapped one at a time and folded with O(1) float
    state; peak resident memory is one chunk plus the distinct-LBA set.
    """
    return summarize_chunks(
        store.iter_chunks(chunk_rows=chunk_rows),
        name=store.name if name is None else name,
        collapse=True,
    )


def summarize_trace(
    trace: Trace,
    chunk_rows: int = DEFAULT_SUMMARY_CHUNK_ROWS,
    collapse: bool = True,
) -> TraceSummary:
    """In-memory convenience wrapper (chunked through the same path)."""
    return summarize_chunks(
        chunked(trace.columns(), chunk_rows), name=trace.name, collapse=collapse
    )
