"""Compatibility shim: the streaming per-size rate state moved to
:mod:`repro.metrics.throughput` (the unified metric-kernel layer).

``StreamingThroughputBySize`` is the old name of
:class:`~repro.metrics.throughput.ThroughputBySizeState`; the alias
keeps existing imports and pickled experiment shard payloads resolving.
"""

from repro.metrics.throughput import ThroughputBySizeState as StreamingThroughputBySize

__all__ = ["StreamingThroughputBySize"]
