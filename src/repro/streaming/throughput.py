"""Streaming per-size average access rate (the trace-derived Fig. 3).

The batch kernel :func:`repro.analysis.throughput.trace_throughput_by_size`
concatenates the eligible requests' sizes and ``size / response`` rates in
trace order and reduces each size class with
:func:`~repro.trace.sequential_sum`.  The streaming version keeps one
:class:`~repro.streaming.reductions.OrderedSum` per size class; because
chunking preserves stream order and each class's values land in its sum
in that same order, ``finalize()`` reproduces the batch per-size means
bit for bit.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.trace import Op, OP_WRITE, TraceColumns

from .reductions import OrderedSum


class StreamingThroughputBySize:
    """Single-pass, mergeable counterpart of ``trace_throughput_by_size``.

    One instance covers one operation type (read or write) over one
    request stream.  ``collapse=True`` keeps each per-size sum O(1) for
    sequential out-of-core consumption; the default deferred form is
    mergeable across contiguous shard splits.
    """

    __slots__ = ("op_code", "collapse", "_sums")

    def __init__(self, op: Op, collapse: bool = False) -> None:
        self.op_code = OP_WRITE if op is Op.WRITE else 0
        self.collapse = bool(collapse)
        self._sums: Dict[int, OrderedSum] = {}

    def update(self, chunk: TraceColumns) -> None:
        """Fold the next chunk (in stream order) in."""
        if len(chunk) == 0:
            return
        response = chunk.response_us
        # NaN response times (incomplete requests) are excluded by the
        # completed mask; silence the comparison warning like the batch
        # kernel does.
        with np.errstate(invalid="ignore"):
            eligible = (
                (chunk.op == self.op_code) & chunk.completed_mask & (response > 0)
            )
        if not eligible.any():
            return
        sizes = chunk.size[eligible]
        rates = sizes / response[eligible]
        for size in np.unique(sizes):
            key = int(size)
            ordered = self._sums.get(key)
            if ordered is None:
                ordered = self._sums[key] = OrderedSum(collapse=self.collapse)
            ordered.update(rates[sizes == size])

    def merge(self, other: "StreamingThroughputBySize") -> None:
        """Absorb the summary of the stream segment following this one."""
        if other.op_code != self.op_code:
            raise ValueError("cannot merge throughput summaries of different ops")
        for key, ordered in other._sums.items():
            mine = self._sums.get(key)
            if mine is None:
                self._sums[key] = mine = OrderedSum(collapse=self.collapse)
            mine.merge(ordered)

    def finalize(self) -> Dict[int, float]:
        """Per-size mean rates (MB/s), exactly like the batch kernel."""
        return {
            size: self._sums[size].total() / self._sums[size].count
            for size in sorted(self._sums)
        }
