"""Compatibility shim: the streaming Table IV state moved to
:mod:`repro.metrics.timing` (the unified metric-kernel layer).

The ``Streaming*`` names are aliases of the moved state classes; they
keep existing imports and pickled experiment shard payloads resolving.
"""

from repro.metrics.timing import (
    NO_WAIT_TOLERANCE_US,
    NoWaitState as StreamingNoWait,
    TimingStatsState as StreamingTimingStats,
)

__all__ = ["NO_WAIT_TOLERANCE_US", "StreamingNoWait", "StreamingTimingStats"]
