"""Streaming spatial/temporal locality (paper Section III-C, Table IV).

Both localities are integer counts over the LBA column, so their
streaming versions are exact in any chunking and under any merge tree;
the only subtlety is the state carried across chunk boundaries:

* spatial locality compares each request's start address with its
  *predecessor's* end address, so the summary carries the previous
  chunk's last ``end_lba`` (and its own first LBA, so that two
  mid-stream shards can account for the pair that straddles their
  boundary when merged);
* temporal locality is ``hits = n - #distinct``, so the summary carries
  the sorted array of distinct LBAs seen so far (exactness requires the
  full distinct set -- a recency window would undercount re-hits -- and
  distinct addresses are a small fraction of requests for the paper's
  workloads).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.locality import Localities
from repro.trace import TraceColumns


class StreamingSpatialLocality:
    """Single-pass, mergeable spatial locality."""

    __slots__ = ("total", "sequential", "first_lba", "last_end_lba")

    def __init__(self) -> None:
        self.total = 0
        self.sequential = 0
        self.first_lba: Optional[int] = None
        self.last_end_lba: Optional[int] = None

    def update(self, chunk: TraceColumns) -> None:
        """Fold the next chunk (in stream order) in."""
        rows = len(chunk)
        if rows == 0:
            return
        lba, size = chunk.lba, chunk.size
        if self.last_end_lba is not None and int(lba[0]) == self.last_end_lba:
            self.sequential += 1
        if rows > 1:
            self.sequential += int(np.count_nonzero(lba[1:] == lba[:-1] + size[:-1]))
        if self.first_lba is None:
            self.first_lba = int(lba[0])
        self.last_end_lba = int(lba[-1]) + int(size[-1])
        self.total += rows

    def merge(self, other: "StreamingSpatialLocality") -> None:
        """Absorb the summary of the stream segment following this one."""
        if other.total == 0:
            return
        self.sequential += other.sequential
        if self.last_end_lba is not None and other.first_lba == self.last_end_lba:
            self.sequential += 1
        if self.first_lba is None:
            self.first_lba = other.first_lba
        self.last_end_lba = other.last_end_lba
        self.total += other.total

    def finalize(self) -> float:
        """Fraction of sequential accesses, exactly like the batch kernel."""
        if self.total == 0:
            return 0.0
        return self.sequential / self.total


class StreamingTemporalLocality:
    """Single-pass, mergeable temporal locality."""

    __slots__ = ("total", "_distinct")

    def __init__(self) -> None:
        self.total = 0
        self._distinct = np.empty(0, dtype=np.int64)

    def update(self, chunk: TraceColumns) -> None:
        """Fold the next chunk in (order does not matter here)."""
        rows = len(chunk)
        if rows == 0:
            return
        self.total += rows
        self._distinct = np.union1d(self._distinct, chunk.lba)

    def merge(self, other: "StreamingTemporalLocality") -> None:
        """Absorb another segment's summary (any order -- set union)."""
        self.total += other.total
        self._distinct = np.union1d(self._distinct, other._distinct)

    @property
    def distinct(self) -> int:
        """Number of distinct start addresses seen."""
        return int(self._distinct.size)

    def finalize(self) -> float:
        """Fraction of re-hits: ``(n - #distinct) / n``, like the batch kernel."""
        if self.total == 0:
            return 0.0
        return (self.total - self.distinct) / self.total


class StreamingLocalities:
    """Both localities together (the shape :func:`repro.analysis.measure` has)."""

    __slots__ = ("spatial", "temporal")

    def __init__(self) -> None:
        self.spatial = StreamingSpatialLocality()
        self.temporal = StreamingTemporalLocality()

    def update(self, chunk: TraceColumns) -> None:
        self.spatial.update(chunk)
        self.temporal.update(chunk)

    def merge(self, other: "StreamingLocalities") -> None:
        self.spatial.merge(other.spatial)
        self.temporal.merge(other.temporal)

    def finalize(self) -> Localities:
        """The exact :class:`~repro.analysis.locality.Localities` object."""
        return Localities(
            spatial=self.spatial.finalize(), temporal=self.temporal.finalize()
        )
