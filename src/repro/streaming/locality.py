"""Compatibility shim: the streaming locality states moved to
:mod:`repro.metrics.locality` (the unified metric-kernel layer).

The ``Streaming*`` names are aliases of the moved state classes; they
keep existing imports and pickled experiment shard payloads resolving.
"""

from repro.metrics.locality import (
    LocalitiesState as StreamingLocalities,
    SpatialLocalityState as StreamingSpatialLocality,
    TemporalLocalityState as StreamingTemporalLocality,
)

__all__ = [
    "StreamingLocalities",
    "StreamingSpatialLocality",
    "StreamingTemporalLocality",
]
