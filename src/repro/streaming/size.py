"""Streaming Table III (size-related) statistics.

Every Table III column reduces to integer sums and counts over the
``size``/``op`` columns, so the streaming state is a handful of Python
ints -- exact under any chunking and any merge order.  ``finalize``
repeats the batch kernel's final divisions verbatim, so the resulting
:class:`~repro.analysis.size_stats.SizeStats` is bit-identical to
:func:`repro.analysis.size_stats.size_stats`.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.size_stats import SizeStats
from repro.trace import KIB, TraceColumns


class StreamingSizeStats:
    """Single-pass, mergeable counterpart of one Table III row."""

    __slots__ = ("total_requests", "total_bytes", "written_bytes", "num_writes",
                 "max_size")

    def __init__(self) -> None:
        self.total_requests = 0
        self.total_bytes = 0
        self.written_bytes = 0
        self.num_writes = 0
        self.max_size = 0

    def update(self, chunk: TraceColumns) -> None:
        """Fold the next chunk in (order does not matter -- all integers)."""
        rows = len(chunk)
        if rows == 0:
            return
        size = chunk.size
        write_mask = chunk.write_mask
        self.total_requests += rows
        self.total_bytes += int(size.sum())
        self.written_bytes += int(size[write_mask].sum())
        self.num_writes += int(np.count_nonzero(write_mask))
        self.max_size = max(self.max_size, int(size.max()))

    def merge(self, other: "StreamingSizeStats") -> None:
        """Absorb another segment's summary (associative, commutative)."""
        self.total_requests += other.total_requests
        self.total_bytes += other.total_bytes
        self.written_bytes += other.written_bytes
        self.num_writes += other.num_writes
        self.max_size = max(self.max_size, other.max_size)

    def finalize(self, name: str) -> SizeStats:
        """The exact :class:`SizeStats` the batch kernel returns."""
        total_requests = self.total_requests
        if total_requests == 0:
            return SizeStats(name, 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        total = self.total_bytes
        written = self.written_bytes
        num_writes = self.num_writes
        num_reads = total_requests - num_writes
        read_total = total - written
        return SizeStats(
            name=name,
            data_size_kib=total / KIB,
            num_requests=total_requests,
            max_size_kib=self.max_size / KIB,
            avg_size_kib=total / total_requests / KIB,
            avg_read_kib=(read_total / num_reads / KIB) if num_reads else 0.0,
            avg_write_kib=(written / num_writes / KIB) if num_writes else 0.0,
            write_req_pct=100.0 * num_writes / total_requests,
            write_size_pct=100.0 * written / total if total else 0.0,
        )
