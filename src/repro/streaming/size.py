"""Compatibility shim: the streaming Table III state moved to
:mod:`repro.metrics.size` (the unified metric-kernel layer).

``StreamingSizeStats`` is the old name of
:class:`~repro.metrics.size.SizeStatsState`; the alias keeps existing
imports and pickled experiment shard payloads resolving.
"""

from repro.metrics.size import SizeStatsState as StreamingSizeStats

__all__ = ["StreamingSizeStats"]
