"""The :class:`Metric` abstraction: one statistic, three execution engines.

A metric is declared **once** -- its name, the value it finalizes to,
the cross-chunk carry state its streaming form needs -- and every way of
executing it derives from that single definition:

* **batch**: ``metric.batch(columns)`` runs the vectorized whole-array
  kernel over an in-memory :class:`~repro.trace.TraceColumns` view.
* **sharded**: ``metric.init()`` (deferred float state) per shard,
  ``metric.update(state, chunk)`` in stream order within each shard,
  ``metric.merge(left, right)`` across adjacent shards in any tree
  shape, ``metric.finalize(state)`` at the root.  This is how the
  parallel experiment runner keeps ``--jobs N`` bit-identical.
* **out-of-core**: ``metric.fold(chunks)`` -- ``init(collapse=True)``
  plus a sequential ``update`` per memory-mapped chunk, O(1) float
  state.  This is ``repro-trace store stats``.

The exactness contract, enforced for every registered metric by
``tests/metrics/test_registry_properties.py``: ``finalize(fold(chunks))
== batch(concatenation of chunks)`` with ``==`` on floats -- the same
bits, not approximately equal -- for *any* chunking and any contiguous
shard split.  Integer state splits trivially; float folds go through
:class:`~repro.metrics.reductions.OrderedSum`; everything the stream
order feeds across a chunk boundary (previous arrival, previous
``end_lba``, the distinct-LBA set) is named in ``carry_fields`` and
carried explicitly by the state object.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, Tuple

from repro.trace import TraceColumns

#: The execution engines every metric definition supports.
ENGINES: Tuple[str, ...] = ("batch", "sharded", "out-of-core")


class MetricState:
    """Protocol of a streaming metric state (duck-typed, not enforced).

    ``update(chunk)`` folds the next :class:`~repro.trace.TraceColumns`
    chunk in (stream order); ``merge(other)`` absorbs the state of the
    stream segment that immediately follows this one.
    """

    __slots__ = ()


class Metric(ABC):
    """One statistic: a vectorized batch kernel plus its mergeable state.

    Subclasses set the declarative attributes and implement
    :meth:`batch`, :meth:`init` and :meth:`finalize`; ``update`` and
    ``merge`` delegate to the state object, so one state class serves
    both the sharded and the out-of-core engine.
    """

    #: Registry key, e.g. ``"size_stats"``.
    name: str = ""
    #: One-line description of the finalized value.
    value_doc: str = ""
    #: Names of the cross-chunk carry state (empty: order-insensitive
    #: integer state that needs no boundary handling).
    carry_fields: Tuple[str, ...] = ()
    #: Execution engines the definition supports (all of them, today).
    engines: Tuple[str, ...] = ENGINES

    # -- the one definition ---------------------------------------------------

    @abstractmethod
    def batch(self, columns: TraceColumns, name: str = "") -> Any:
        """The vectorized whole-array kernel (the batch engine)."""

    @abstractmethod
    def init(self, collapse: bool = False) -> Any:
        """A fresh streaming state.

        ``collapse=True`` keeps float folds O(1) for sequential
        out-of-core consumption; the default deferred form is mergeable
        across contiguous shard splits (see
        :class:`~repro.metrics.reductions.OrderedSum`).
        """

    @abstractmethod
    def finalize(self, state: Any, name: str = "") -> Any:
        """The exact value :meth:`batch` returns for the folded stream."""

    # -- generic state plumbing (shared by every metric) ----------------------

    def update(self, state: Any, chunk: TraceColumns) -> Any:
        """Fold the next chunk (in stream order) into ``state``."""
        state.update(chunk)
        return state

    def merge(self, left: Any, right: Any) -> Any:
        """Absorb ``right`` -- the summary of the stream segment that
        immediately follows ``left`` -- into ``left``."""
        left.merge(right)
        return left

    # -- the out-of-core engine ------------------------------------------------

    def fold(
        self,
        chunks: Iterable[TraceColumns],
        name: str = "",
        collapse: bool = True,
    ) -> Any:
        """Fold an in-order chunk iterable and finalize in one call."""
        state = self.init(collapse=collapse)
        for chunk in chunks:
            self.update(state, chunk)
        return self.finalize(state, name)

    def __deepcopy__(self, memo) -> "Metric":
        """Metric definitions are stateless singletons: states deep-copy
        (shard workers clone them freely), the definitions never do."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Metric {self.name!r}>"
