"""The Table III (size-related) metric: one definition, every engine.

Every Table III column reduces to integer sums and counts over the
``size``/``op`` columns, so the streaming state is a handful of Python
ints -- exact under any chunking and any merge order -- and the batch
kernel is the same handful of ``np.sum``/``count_nonzero`` reductions
over the whole columns.  ``finalize`` and ``batch`` share the final
scalar divisions verbatim, so the two engines are bit-identical by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace import KIB, TraceColumns

from .base import Metric


@dataclass(frozen=True)
class SizeStats:
    """The measured counterpart of one Table III row."""

    name: str
    data_size_kib: float
    num_requests: int
    max_size_kib: float
    avg_size_kib: float
    avg_read_kib: float
    avg_write_kib: float
    write_req_pct: float
    write_size_pct: float


def _finalize_counts(
    name: str,
    total_requests: int,
    total: int,
    written: int,
    num_writes: int,
    max_size: int,
) -> SizeStats:
    """The final per-column divisions, shared by both engines verbatim.

    Averages over an empty class (e.g. a trace with no reads) are
    reported as 0, mirroring how a column would be blank in the paper's
    table.
    """
    if total_requests == 0:
        return SizeStats(name, 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    num_reads = total_requests - num_writes
    read_total = total - written
    return SizeStats(
        name=name,
        data_size_kib=total / KIB,
        num_requests=total_requests,
        max_size_kib=max_size / KIB,
        avg_size_kib=total / total_requests / KIB,
        avg_read_kib=(read_total / num_reads / KIB) if num_reads else 0.0,
        avg_write_kib=(written / num_writes / KIB) if num_writes else 0.0,
        write_req_pct=100.0 * num_writes / total_requests,
        write_size_pct=100.0 * written / total if total else 0.0,
    )


class SizeStatsState:
    """Single-pass, mergeable state of one Table III row."""

    __slots__ = ("total_requests", "total_bytes", "written_bytes", "num_writes",
                 "max_size")

    def __init__(self) -> None:
        self.total_requests = 0
        self.total_bytes = 0
        self.written_bytes = 0
        self.num_writes = 0
        self.max_size = 0

    def update(self, chunk: TraceColumns) -> None:
        """Fold the next chunk in (order does not matter -- all integers)."""
        rows = len(chunk)
        if rows == 0:
            return
        size = chunk.size
        write_mask = chunk.write_mask
        self.total_requests += rows
        self.total_bytes += int(size.sum())
        self.written_bytes += int(size[write_mask].sum())
        self.num_writes += int(np.count_nonzero(write_mask))
        self.max_size = max(self.max_size, int(size.max()))

    def merge(self, other: "SizeStatsState") -> None:
        """Absorb another segment's summary (associative, commutative)."""
        self.total_requests += other.total_requests
        self.total_bytes += other.total_bytes
        self.written_bytes += other.written_bytes
        self.num_writes += other.num_writes
        self.max_size = max(self.max_size, other.max_size)

    def finalize(self, name: str) -> SizeStats:
        """The exact :class:`SizeStats` the batch engine returns."""
        return _finalize_counts(
            name,
            self.total_requests,
            self.total_bytes,
            self.written_bytes,
            self.num_writes,
            self.max_size,
        )


class SizeStatsMetric(Metric):
    """Every Table III column for one request stream."""

    name = "size_stats"
    value_doc = "SizeStats: the Table III columns (sizes, counts, write shares)"
    carry_fields = ()  # integer sums/counts: order-insensitive

    def batch(self, columns: TraceColumns, name: str = "") -> SizeStats:
        total_requests = len(columns)
        if total_requests == 0:
            return _finalize_counts(name, 0, 0, 0, 0, 0)
        size = columns.size
        write_mask = columns.write_mask
        return _finalize_counts(
            name,
            total_requests,
            int(size.sum()),
            int(size[write_mask].sum()),
            int(np.count_nonzero(write_mask)),
            int(size.max()),
        )

    def init(self, collapse: bool = False) -> SizeStatsState:
        del collapse  # no float folds: one state form serves both engines
        return SizeStatsState()

    def finalize(self, state: SizeStatsState, name: str = "") -> SizeStats:
        return state.finalize(name)


#: The registered singleton (see :mod:`repro.metrics.registry`).
SIZE_STATS = SizeStatsMetric()
