"""The Table IV (timing-related) metric: one definition, every engine.

The streaming state folds one trace's request stream, chunk by chunk,
into exactly the :class:`TimingStats` the batch kernel produces:

* integer state (request/completed/no-wait counts, byte totals,
  localities) is exact in any order;
* boundary state (first/last arrival, the predecessor's ``end_lba``, the
  distinct-LBA set) crosses chunk and shard boundaries explicitly;
* float reductions (inter-arrival gaps, service and response times) run
  through :class:`~repro.metrics.reductions.OrderedSum`, so the means
  reproduce the batch kernel's left-to-right ``sequential_sum`` bit for
  bit -- including the chunk-crossing arrival gap, which is folded in at
  exactly its stream position.

``finalize`` and ``batch`` share the scalar expressions verbatim
(guards, division order, the ``* 100.0`` placements), because with IEEE
floats ``(100.0 * a) / b`` and ``100.0 * (a / b)`` are different
roundings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.trace import TraceColumns, US_PER_MS, US_PER_S, sequential_sum

from .base import Metric
from .locality import LocalitiesState, LOCALITIES
from .reductions import OrderedSum

#: The ``Request.no_wait`` tolerance (absorbs event-engine round-off).
NO_WAIT_TOLERANCE_US = 1e-6


@dataclass(frozen=True)
class TimingStats:
    """The measured counterpart of one Table IV row."""

    name: str
    duration_s: float
    arrival_rate: float
    access_rate_kib_s: float
    nowait_pct: float
    mean_service_ms: float
    mean_response_ms: float
    spatial_locality_pct: float
    temporal_locality_pct: float
    mean_interarrival_ms: float


class NoWaitState:
    """Single-pass, mergeable *NoWait Req. Ratio* (Table IV)."""

    __slots__ = ("completed", "no_wait")

    def __init__(self) -> None:
        self.completed = 0
        self.no_wait = 0

    def update(self, chunk: TraceColumns) -> None:
        """Fold the next chunk in (integer counts -- any order)."""
        completed_mask = chunk.completed_mask
        count = int(np.count_nonzero(completed_mask))
        if not count:
            return
        self.completed += count
        wait = chunk.wait_us[completed_mask]
        self.no_wait += int(np.count_nonzero(wait <= NO_WAIT_TOLERANCE_US))

    def merge(self, other: "NoWaitState") -> None:
        self.completed += other.completed
        self.no_wait += other.no_wait

    def finalize(self) -> float:
        """No-wait percentage, exactly as the batch kernel divides it."""
        if not self.completed:
            return 0.0
        return 100.0 * self.no_wait / self.completed


class TimingStatsState:
    """Single-pass, mergeable state of one Table IV row.

    ``collapse=True`` keeps the float folds O(1) (sequential out-of-core
    consumption); the default deferred form is mergeable under any
    contiguous shard split.
    """

    __slots__ = (
        "total_requests",
        "total_bytes",
        "first_arrival_us",
        "last_arrival_us",
        "max_complete_us",
        "nowait",
        "gap_sum",
        "service_sum",
        "response_sum",
        "localities",
    )

    def __init__(self, collapse: bool = False) -> None:
        self.total_requests = 0
        self.total_bytes = 0
        self.first_arrival_us: Optional[float] = None
        self.last_arrival_us: Optional[float] = None
        self.max_complete_us: Optional[float] = None
        self.nowait = NoWaitState()
        self.gap_sum = OrderedSum(collapse=collapse)
        self.service_sum = OrderedSum(collapse=collapse)
        self.response_sum = OrderedSum(collapse=collapse)
        self.localities = LocalitiesState()

    def update(self, chunk: TraceColumns) -> None:
        """Fold the next chunk (in stream order) in."""
        rows = len(chunk)
        if rows == 0:
            return
        arrivals = chunk.arrival_us
        # Inter-arrival gaps, including the one crossing from the previous
        # chunk -- the same ``x[k+1] - x[k]`` subtraction np.diff performs.
        internal = np.diff(arrivals) if rows > 1 else np.empty(0, dtype=np.float64)
        if self.last_arrival_us is not None:
            crossing = np.array(
                [float(arrivals[0]) - self.last_arrival_us], dtype=np.float64
            )
            self.gap_sum.update(np.concatenate((crossing, internal)))
        else:
            self.gap_sum.update(internal)
        if self.first_arrival_us is None:
            self.first_arrival_us = float(arrivals[0])
        self.last_arrival_us = float(arrivals[-1])

        completed_mask = chunk.completed_mask
        if completed_mask.any():
            self.service_sum.update(chunk.service_us[completed_mask])
            self.response_sum.update(chunk.response_us[completed_mask])
            chunk_max = float(chunk.complete_us[completed_mask].max())
            if self.max_complete_us is None or chunk_max > self.max_complete_us:
                self.max_complete_us = chunk_max
        self.nowait.update(chunk)
        self.localities.update(chunk)
        self.total_requests += rows
        self.total_bytes += int(chunk.size.sum())

    def merge(self, other: "TimingStatsState") -> None:
        """Absorb the summary of the stream segment following this one."""
        if other.total_requests == 0:
            return
        if self.total_requests:
            # The gap straddling the shard boundary belongs to neither
            # side's internal diffs; fold it in at its stream position.
            assert other.first_arrival_us is not None
            assert self.last_arrival_us is not None
            self.gap_sum.update(
                np.array(
                    [other.first_arrival_us - self.last_arrival_us], dtype=np.float64
                )
            )
            self.last_arrival_us = other.last_arrival_us
        else:
            self.first_arrival_us = other.first_arrival_us
            self.last_arrival_us = other.last_arrival_us
        self.gap_sum.merge(other.gap_sum)
        self.service_sum.merge(other.service_sum)
        self.response_sum.merge(other.response_sum)
        if other.max_complete_us is not None and (
            self.max_complete_us is None
            or other.max_complete_us > self.max_complete_us
        ):
            self.max_complete_us = other.max_complete_us
        self.nowait.merge(other.nowait)
        self.localities.merge(other.localities)
        self.total_requests += other.total_requests
        self.total_bytes += other.total_bytes

    def finalize(self, name: str) -> TimingStats:
        """The exact :class:`TimingStats` the batch kernel returns."""
        localities = self.localities.finalize()
        if self.total_requests == 0:
            return TimingStats(name, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
                               localities.spatial_pct, localities.temporal_pct, 0.0)
        assert self.first_arrival_us is not None
        assert self.last_arrival_us is not None
        start_us = self.first_arrival_us
        if self.max_complete_us is None:
            end_us = self.last_arrival_us
        else:
            end_us = max(self.last_arrival_us, self.max_complete_us)
        duration_us = end_us - start_us
        duration_s = duration_us / US_PER_S
        if duration_us <= 0:
            arrival_rate = 0.0
            access_rate_kib_s = 0.0
        else:
            arrival_rate = self.total_requests / duration_s
            access_rate_kib_s = self.total_bytes / 1024.0 / duration_s
        num_gaps = self.gap_sum.count
        mean_gap_ms = (
            (self.gap_sum.total() / num_gaps / US_PER_MS) if num_gaps else 0.0
        )
        num_completed = self.nowait.completed
        if num_completed:
            nowait_pct = self.nowait.finalize()
            mean_service_ms = self.service_sum.total() / num_completed / US_PER_MS
            mean_response_ms = self.response_sum.total() / num_completed / US_PER_MS
        else:
            nowait_pct = mean_service_ms = mean_response_ms = 0.0
        return TimingStats(
            name=name,
            duration_s=duration_s,
            arrival_rate=arrival_rate,
            access_rate_kib_s=access_rate_kib_s,
            nowait_pct=nowait_pct,
            mean_service_ms=mean_service_ms,
            mean_response_ms=mean_response_ms,
            spatial_locality_pct=localities.spatial_pct,
            temporal_locality_pct=localities.temporal_pct,
            mean_interarrival_ms=mean_gap_ms,
        )

    @property
    def completed(self) -> bool:
        """True when every request seen so far carries device timestamps."""
        return self.nowait.completed == self.total_requests


class TimingStatsMetric(Metric):
    """Every Table IV column for one request stream.

    The service/response/no-wait columns need device timestamps; feed a
    stream that was replayed on an :class:`~repro.emmc.device.EmmcDevice`
    (they are reported as 0 for an un-replayed trace, like the localities
    of an empty trace).
    """

    name = "timing_stats"
    value_doc = "TimingStats: the Table IV columns (rates, latencies, localities)"
    carry_fields = (
        "first_arrival_us",
        "last_arrival_us",
        "max_complete_us",
        "first_lba",
        "last_end_lba",
        "distinct_lbas",
        "gap_sum",
        "service_sum",
        "response_sum",
    )

    def batch(self, columns: TraceColumns, name: str = "") -> TimingStats:
        localities = LOCALITIES.batch(columns)
        gaps = columns.inter_arrival_us
        mean_gap_ms = (
            (sequential_sum(gaps) / gaps.size / US_PER_MS) if gaps.size else 0.0
        )
        completed_mask = columns.completed_mask
        num_completed = int(np.count_nonzero(completed_mask))
        if num_completed:
            wait = columns.wait_us[completed_mask]
            nowait = int(np.count_nonzero(wait <= NO_WAIT_TOLERANCE_US))
            nowait_pct = 100.0 * nowait / num_completed
            mean_service_ms = (
                sequential_sum(columns.service_us[completed_mask])
                / num_completed
                / US_PER_MS
            )
            mean_response_ms = (
                sequential_sum(columns.response_us[completed_mask])
                / num_completed
                / US_PER_MS
            )
        else:
            nowait_pct = mean_service_ms = mean_response_ms = 0.0
        total_requests = len(columns)
        if total_requests == 0:
            duration_s = 0.0
            arrival_rate = 0.0
            access_rate_kib_s = 0.0
        else:
            arrivals = columns.arrival_us
            start_us = float(arrivals[0])
            last_arrival = float(arrivals[-1])
            if completed_mask.any():
                end_us = max(
                    last_arrival, float(columns.complete_us[completed_mask].max())
                )
            else:
                end_us = last_arrival
            duration_us = end_us - start_us
            duration_s = duration_us / US_PER_S
            if duration_us <= 0:
                arrival_rate = 0.0
                access_rate_kib_s = 0.0
            else:
                arrival_rate = total_requests / duration_s
                access_rate_kib_s = int(columns.size.sum()) / 1024.0 / duration_s
        return TimingStats(
            name=name,
            duration_s=duration_s,
            arrival_rate=arrival_rate,
            access_rate_kib_s=access_rate_kib_s,
            nowait_pct=nowait_pct,
            mean_service_ms=mean_service_ms,
            mean_response_ms=mean_response_ms,
            spatial_locality_pct=localities.spatial_pct,
            temporal_locality_pct=localities.temporal_pct,
            mean_interarrival_ms=mean_gap_ms,
        )

    def init(self, collapse: bool = False) -> TimingStatsState:
        return TimingStatsState(collapse=collapse)

    def finalize(self, state: TimingStatsState, name: str = "") -> TimingStats:
        return state.finalize(name)


#: The registered singleton (see :mod:`repro.metrics.registry`).
TIMING_STATS = TimingStatsMetric()
