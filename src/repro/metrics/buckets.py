"""Histogram buckets used throughout the paper's figures.

Fig. 4 and Fig. 7a bucket request sizes; Fig. 5 and Fig. 7b bucket response
times; Fig. 6 and Fig. 7c bucket inter-arrival times.  The paper plots
stacked percentage bars over these ranges; we reproduce the same binning.

The buckets live in the metric layer (below :mod:`repro.workloads`, which
re-exports them) because the distribution metrics in
:mod:`repro.metrics.histograms` are defined over them and the metric
layer depends only on :mod:`repro.trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.trace import SECTOR


@dataclass(frozen=True)
class Bucket:
    """A half-open range ``(low, high]`` with a display label."""

    label: str
    low: float  # exclusive
    high: float  # inclusive; may be float('inf')

    def contains(self, value: float) -> bool:
        """True when ``value`` falls in ``(low, high]``."""
        return self.low < value <= self.high


def _make_buckets(edges: Sequence[Tuple[str, float, float]]) -> Tuple[Bucket, ...]:
    return tuple(Bucket(label, low, high) for label, low, high in edges)


#: Request size buckets (bytes).  ``<=4K`` is the single-page class the
#: paper's Characteristic 2 is about.
SIZE_BUCKETS: Tuple[Bucket, ...] = _make_buckets(
    [
        ("<=4K", 0, 4 * 1024),
        ("8K", 4 * 1024, 8 * 1024),
        ("(8K,16K]", 8 * 1024, 16 * 1024),
        ("(16K,64K]", 16 * 1024, 64 * 1024),
        ("(64K,256K]", 64 * 1024, 256 * 1024),
        (">256K", 256 * 1024, float("inf")),
    ]
)

#: Size bucket edges in 4 KB pages: (low_pages, high_pages) inclusive ranges,
#: aligned with :data:`SIZE_BUCKETS`.  The top bucket's high edge is
#: per-application (max request size), marked ``None`` here.
SIZE_BUCKET_PAGES: Tuple[Tuple[int, object], ...] = (
    (1, 1),
    (2, 2),
    (3, 4),
    (5, 16),
    (17, 64),
    (65, None),
)

#: Response-time buckets (milliseconds) for Fig. 5 / Fig. 7b.
RESPONSE_BUCKETS_MS: Tuple[Bucket, ...] = _make_buckets(
    [
        ("<=2ms", 0, 2),
        ("(2,4]ms", 2, 4),
        ("(4,8]ms", 4, 8),
        ("(8,16]ms", 8, 16),
        ("(16,128]ms", 16, 128),
        (">128ms", 128, float("inf")),
    ]
)

#: Inter-arrival-time buckets (milliseconds) for Fig. 6 / Fig. 7c.
INTERARRIVAL_BUCKETS_MS: Tuple[Bucket, ...] = _make_buckets(
    [
        ("<=1ms", 0, 1),
        ("(1,4]ms", 1, 4),
        ("(4,16]ms", 4, 16),
        ("(16,64]ms", 16, 64),
        ("(64,256]ms", 64, 256),
        (">256ms", 256, float("inf")),
    ]
)


def histogram(values: Sequence[float], buckets: Sequence[Bucket]) -> Dict[str, float]:
    """Fraction of ``values`` falling in each bucket, keyed by label.

    Values outside every bucket (impossible for the standard bucket sets,
    which cover ``(0, inf]``) are ignored.  Returns all-zero fractions for an
    empty input.

    Vectorized: values are bulk-compared against each bucket's edges
    (first matching bucket wins, exactly like the scalar reference loop
    in ``tests/analysis/oracles.py``); counts are exact integers, so the
    resulting fractions are bit-identical to the per-value loop.
    """
    total = len(values)
    if total == 0:
        return {bucket.label: 0.0 for bucket in buckets}
    array = np.asarray(values, dtype=np.float64)
    remaining = np.ones(array.shape, dtype=bool)
    counts = {bucket.label: 0 for bucket in buckets}
    for bucket in buckets:
        matched = remaining & (bucket.low < array) & (array <= bucket.high)
        counts[bucket.label] += int(np.count_nonzero(matched))
        remaining &= ~matched
    return {label: count / total for label, count in counts.items()}


def size_histogram(sizes_bytes: Sequence[int]) -> Dict[str, float]:
    """Fig. 4-style request size histogram (input in bytes)."""
    return histogram(list(sizes_bytes), SIZE_BUCKETS)


def pages_to_bucket_index(pages: int) -> int:
    """Index into :data:`SIZE_BUCKETS` for a request of ``pages`` 4 KB pages."""
    size = pages * SECTOR
    for index, bucket in enumerate(SIZE_BUCKETS):
        if bucket.contains(size):
            return index
    raise ValueError(f"no size bucket for {pages} pages")


def bucket_labels(buckets: Sequence[Bucket]) -> List[str]:
    """Display labels of the buckets, in order."""
    return [bucket.label for bucket in buckets]
