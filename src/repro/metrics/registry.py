"""The metric registry: every statistic the repro reports, by name.

One flat, ordered namespace.  Consumers address metrics by registry key
-- the CLI (``repro-trace metrics list``, ``stats --engine``), the
streaming summary driver, the experiment ShardPlans -- so adding a
statistic is one :class:`~repro.metrics.base.Metric` subclass plus one
:func:`register` call, and every engine picks it up.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .base import Metric
from .histograms import (
    INTERARRIVAL_DISTRIBUTION,
    RESPONSE_DISTRIBUTION,
    SIZE_DISTRIBUTION,
)
from .locality import LOCALITIES, SPATIAL_LOCALITY, TEMPORAL_LOCALITY
from .size import SIZE_STATS
from .throughput import THROUGHPUT_BY_SIZE_READ, THROUGHPUT_BY_SIZE_WRITE
from .timing import TIMING_STATS

#: Registered metrics by name, in registration order (plain dicts keep
#: insertion order, so listings are deterministic under any hash seed).
REGISTRY: Dict[str, Metric] = {}


def register(metric: Metric) -> Metric:
    """Add ``metric`` to the registry; its ``name`` must be unique."""
    if not metric.name:
        raise ValueError("metric has no name")
    existing = REGISTRY.get(metric.name)
    if existing is not None and existing is not metric:
        raise ValueError(f"metric {metric.name!r} already registered")
    REGISTRY[metric.name] = metric
    return metric


def get_metric(name: str) -> Metric:
    """Look a metric up by registry key."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown metric {name!r}; registered: {', '.join(REGISTRY)}"
        ) from None


def metric_names() -> List[str]:
    """All registry keys, in registration order."""
    return list(REGISTRY)


def all_metrics() -> List[Metric]:
    """All registered metrics, in registration order."""
    return list(REGISTRY.values())


#: The metric set a trace summary folds (what ``stats``/``store stats``
#: print): the Table III/IV rows plus the three figure histograms.
SUMMARY_METRIC_NAMES: Tuple[str, ...] = (
    "size_stats",
    "timing_stats",
    "size_distribution",
    "response_distribution",
    "interarrival_distribution",
)


def summary_metrics() -> List[Metric]:
    """The metrics behind one trace summary, in summary order."""
    return [get_metric(name) for name in SUMMARY_METRIC_NAMES]


for _metric in (
    SIZE_STATS,
    TIMING_STATS,
    SPATIAL_LOCALITY,
    TEMPORAL_LOCALITY,
    LOCALITIES,
    SIZE_DISTRIBUTION,
    RESPONSE_DISTRIBUTION,
    INTERARRIVAL_DISTRIBUTION,
    THROUGHPUT_BY_SIZE_READ,
    THROUGHPUT_BY_SIZE_WRITE,
):
    register(_metric)
del _metric
