"""Spatial/temporal locality metrics (paper Section III-C, Table IV).

* Spatial locality: the percentage of sequential request accesses over
  the total number of requests.  "A sequential request access happens
  when the starting address of the current request is next to the ending
  address of its predecessor."
* Temporal locality: the percentage of address hits out of the total
  number of requests, where the hit count "is increased by one when an
  address is re-accessed."

Both are integer counts over the LBA column, so the batch kernels
(shifted-array equality for spatial, ``np.unique`` for temporal) and the
streaming states are exactly -- not approximately -- equal under any
chunking and any merge tree.  The only subtlety is the carry state:

* spatial locality compares each request's start address with its
  *predecessor's* end address, so the state carries the previous chunk's
  last ``end_lba`` (and its own first LBA, so that two mid-stream shards
  can account for the pair that straddles their boundary when merged);
* temporal locality is ``hits = n - #distinct``, so the state carries
  the sorted array of distinct LBAs seen so far (exactness requires the
  full distinct set -- a recency window would undercount re-hits -- and
  distinct addresses are a small fraction of requests for the paper's
  workloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.trace import TraceColumns

from .base import Metric


@dataclass(frozen=True)
class Localities:
    """Measured localities of a trace, as fractions in [0, 1]."""

    spatial: float
    temporal: float

    @property
    def spatial_pct(self) -> float:
        """Spatial locality as a percentage."""
        return self.spatial * 100.0

    @property
    def temporal_pct(self) -> float:
        """Temporal locality as a percentage."""
        return self.temporal * 100.0


class SpatialLocalityState:
    """Single-pass, mergeable spatial locality."""

    __slots__ = ("total", "sequential", "first_lba", "last_end_lba")

    def __init__(self) -> None:
        self.total = 0
        self.sequential = 0
        self.first_lba: Optional[int] = None
        self.last_end_lba: Optional[int] = None

    def update(self, chunk: TraceColumns) -> None:
        """Fold the next chunk (in stream order) in."""
        rows = len(chunk)
        if rows == 0:
            return
        lba, size = chunk.lba, chunk.size
        if self.last_end_lba is not None and int(lba[0]) == self.last_end_lba:
            self.sequential += 1
        if rows > 1:
            self.sequential += int(np.count_nonzero(lba[1:] == lba[:-1] + size[:-1]))
        if self.first_lba is None:
            self.first_lba = int(lba[0])
        self.last_end_lba = int(lba[-1]) + int(size[-1])
        self.total += rows

    def merge(self, other: "SpatialLocalityState") -> None:
        """Absorb the summary of the stream segment following this one."""
        if other.total == 0:
            return
        self.sequential += other.sequential
        if self.last_end_lba is not None and other.first_lba == self.last_end_lba:
            self.sequential += 1
        if self.first_lba is None:
            self.first_lba = other.first_lba
        self.last_end_lba = other.last_end_lba
        self.total += other.total

    def finalize(self) -> float:
        """Fraction of sequential accesses, same division as the batch engine."""
        if self.total == 0:
            return 0.0
        return self.sequential / self.total


class TemporalLocalityState:
    """Single-pass, mergeable temporal locality."""

    __slots__ = ("total", "_distinct")

    def __init__(self) -> None:
        self.total = 0
        self._distinct = np.empty(0, dtype=np.int64)

    def update(self, chunk: TraceColumns) -> None:
        """Fold the next chunk in (order does not matter here)."""
        rows = len(chunk)
        if rows == 0:
            return
        self.total += rows
        self._distinct = np.union1d(self._distinct, chunk.lba)

    def merge(self, other: "TemporalLocalityState") -> None:
        """Absorb another segment's summary (any order -- set union)."""
        self.total += other.total
        self._distinct = np.union1d(self._distinct, other._distinct)

    @property
    def distinct(self) -> int:
        """Number of distinct start addresses seen."""
        return int(self._distinct.size)

    def finalize(self) -> float:
        """Fraction of re-hits ``(n - #distinct) / n``, like the batch engine."""
        if self.total == 0:
            return 0.0
        return (self.total - self.distinct) / self.total


class LocalitiesState:
    """Both localities together (the shape :class:`Localities` finalizes to)."""

    __slots__ = ("spatial", "temporal")

    def __init__(self) -> None:
        self.spatial = SpatialLocalityState()
        self.temporal = TemporalLocalityState()

    def update(self, chunk: TraceColumns) -> None:
        self.spatial.update(chunk)
        self.temporal.update(chunk)

    def merge(self, other: "LocalitiesState") -> None:
        self.spatial.merge(other.spatial)
        self.temporal.merge(other.temporal)

    def finalize(self) -> Localities:
        """The exact :class:`Localities` object the batch engine returns."""
        return Localities(
            spatial=self.spatial.finalize(), temporal=self.temporal.finalize()
        )


class SpatialLocalityMetric(Metric):
    """Fraction of requests starting exactly at their predecessor's end."""

    name = "spatial_locality"
    value_doc = "float fraction of sequential accesses (Table IV SpatLoc)"
    carry_fields = ("first_lba", "last_end_lba")

    def batch(self, columns: TraceColumns, name: str = "") -> float:
        del name  # a plain fraction carries no trace name
        total = len(columns)
        if total == 0:
            return 0.0
        lba, size = columns.lba, columns.size
        sequential = int(np.count_nonzero(lba[1:] == lba[:-1] + size[:-1]))
        return sequential / total

    def init(self, collapse: bool = False) -> SpatialLocalityState:
        del collapse  # integer counts: one state form serves both engines
        return SpatialLocalityState()

    def finalize(self, state: SpatialLocalityState, name: str = "") -> float:
        del name
        return state.finalize()


class TemporalLocalityMetric(Metric):
    """Fraction of requests whose start address was accessed before.

    The first occurrence of each distinct address is a miss and every
    re-occurrence a hit, so ``hits = n - #distinct`` -- one ``np.unique``
    instead of a per-request set walk.
    """

    name = "temporal_locality"
    value_doc = "float fraction of address re-hits (Table IV TempLoc)"
    carry_fields = ("distinct_lbas",)

    def batch(self, columns: TraceColumns, name: str = "") -> float:
        del name
        total = len(columns)
        if total == 0:
            return 0.0
        hits = total - int(np.unique(columns.lba).size)
        return hits / total

    def init(self, collapse: bool = False) -> TemporalLocalityState:
        del collapse
        return TemporalLocalityState()

    def finalize(self, state: TemporalLocalityState, name: str = "") -> float:
        del name
        return state.finalize()


class LocalitiesMetric(Metric):
    """Both localities in one pass-friendly metric."""

    name = "localities"
    value_doc = "Localities(spatial, temporal) fractions in one object"
    carry_fields = ("first_lba", "last_end_lba", "distinct_lbas")

    def batch(self, columns: TraceColumns, name: str = "") -> Localities:
        del name
        return Localities(
            spatial=SPATIAL_LOCALITY.batch(columns),
            temporal=TEMPORAL_LOCALITY.batch(columns),
        )

    def init(self, collapse: bool = False) -> LocalitiesState:
        del collapse
        return LocalitiesState()

    def finalize(self, state: LocalitiesState, name: str = "") -> Localities:
        del name
        return state.finalize()


#: The registered singletons (see :mod:`repro.metrics.registry`).
SPATIAL_LOCALITY = SpatialLocalityMetric()
TEMPORAL_LOCALITY = TemporalLocalityMetric()
LOCALITIES = LocalitiesMetric()
