"""Unified metric-kernel layer: one definition per statistic, three engines.

Every statistic the paper reports -- the Table III/IV rows, the
Figs. 4-6 histograms, the localities, the trace-derived Fig. 3 curve --
is declared exactly once as a :class:`~repro.metrics.base.Metric`: a
vectorized ``batch`` kernel plus a mergeable streaming state whose
``finalize`` is bit-identical to ``batch`` under any chunking and any
contiguous shard split (see :mod:`repro.metrics.base` for the contract
and :mod:`repro.metrics.reductions` for the float-fold machinery).

:mod:`repro.analysis` (whole-trace convenience functions) and
:mod:`repro.streaming` (chunked summaries) are thin adapters over this
package; the registry (:mod:`repro.metrics.registry`) is the single
namespace every engine -- the CLI, the out-of-core store path, the
parallel experiment runner -- resolves metrics from.
"""

from .base import ENGINES, Metric, MetricState
from .driver import MetricSetState, batch_values, fold_chunks
from .histograms import (
    HistogramState,
    INTERARRIVAL_DISTRIBUTION,
    InterarrivalDistributionMetric,
    InterarrivalHistogramState,
    RESPONSE_DISTRIBUTION,
    ResponseDistributionMetric,
    ResponseHistogramState,
    SIZE_DISTRIBUTION,
    SizeDistributionMetric,
    SizeHistogramState,
)
from .locality import (
    LOCALITIES,
    Localities,
    LocalitiesMetric,
    LocalitiesState,
    SPATIAL_LOCALITY,
    SpatialLocalityMetric,
    SpatialLocalityState,
    TEMPORAL_LOCALITY,
    TemporalLocalityMetric,
    TemporalLocalityState,
)
from .reductions import OrderedSum, chunked
from .registry import (
    REGISTRY,
    SUMMARY_METRIC_NAMES,
    all_metrics,
    get_metric,
    metric_names,
    register,
    summary_metrics,
)
from .size import SIZE_STATS, SizeStats, SizeStatsMetric, SizeStatsState
from .throughput import (
    THROUGHPUT_BY_SIZE_READ,
    THROUGHPUT_BY_SIZE_WRITE,
    ThroughputBySizeMetric,
    ThroughputBySizeState,
)
from .timing import (
    NO_WAIT_TOLERANCE_US,
    NoWaitState,
    TIMING_STATS,
    TimingStats,
    TimingStatsMetric,
    TimingStatsState,
)

__all__ = [
    "ENGINES",
    "Metric",
    "MetricState",
    "MetricSetState",
    "batch_values",
    "fold_chunks",
    "OrderedSum",
    "chunked",
    "REGISTRY",
    "SUMMARY_METRIC_NAMES",
    "all_metrics",
    "get_metric",
    "metric_names",
    "register",
    "summary_metrics",
    # size
    "SIZE_STATS",
    "SizeStats",
    "SizeStatsMetric",
    "SizeStatsState",
    # timing
    "NO_WAIT_TOLERANCE_US",
    "NoWaitState",
    "TIMING_STATS",
    "TimingStats",
    "TimingStatsMetric",
    "TimingStatsState",
    # locality
    "LOCALITIES",
    "Localities",
    "LocalitiesMetric",
    "LocalitiesState",
    "SPATIAL_LOCALITY",
    "SpatialLocalityMetric",
    "SpatialLocalityState",
    "TEMPORAL_LOCALITY",
    "TemporalLocalityMetric",
    "TemporalLocalityState",
    # histograms
    "HistogramState",
    "SizeHistogramState",
    "ResponseHistogramState",
    "InterarrivalHistogramState",
    "SIZE_DISTRIBUTION",
    "SizeDistributionMetric",
    "RESPONSE_DISTRIBUTION",
    "ResponseDistributionMetric",
    "INTERARRIVAL_DISTRIBUTION",
    "InterarrivalDistributionMetric",
    # throughput
    "THROUGHPUT_BY_SIZE_READ",
    "THROUGHPUT_BY_SIZE_WRITE",
    "ThroughputBySizeMetric",
    "ThroughputBySizeState",
]
