"""Order-preserving float reduction state for the metric kernels.

Bit-identity is the whole game.  The batch kernels reduce float arrays
with :func:`~repro.trace.sequential_sum` -- a strict left-to-right fold
-- and the experiment digests pin those last-ulp roundings.  A streaming
metric state must finalize to *exactly* the same bits no matter how the
request stream was chunked or sharded, which float addition makes
non-trivial: an already-rounded partial sum of a *mid-stream* segment
cannot be merged exactly, because the fold's intermediate roundings
depend on the running value it started from.

:class:`OrderedSum` therefore keeps its state in one of two forms:

* **deferred** (default): the contributions are kept as an ordered list
  of value segments; ``merge`` concatenates segment lists and
  ``total()`` performs the one left-to-right fold over the
  concatenation.  Exact under any merge tree (associative), at the cost
  of retaining the reduced values (still far below ``Request``-object
  footprints -- the summed quantities are one f64 per contributing row).
* **collapsed** (``collapse=True``): only the running fold value is
  kept, O(1) memory.  ``update`` continues the fold exactly by
  prepending the carry to the incoming chunk before
  ``np.add.accumulate`` (the first partial is the carry itself, so the
  accumulation continues precisely where it stopped).  A collapsed sum
  is the *left* end of the stream by construction: it can absorb a
  deferred right operand, but nothing can be merged onto its left, and
  two collapsed sums cannot be merged at all (that would require
  re-rounding history neither side kept).

The sequential out-of-core engine (``store stats``) uses collapsed sums;
shard-and-merge engines (the experiment runner) use deferred ones.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.trace import TraceColumns, sequential_sum


def chunked(columns: TraceColumns, chunk_rows: int) -> Iterator[TraceColumns]:
    """Slice an in-memory column set into zero-copy row chunks."""
    if chunk_rows <= 0:
        raise ValueError("chunk_rows must be positive")
    total = len(columns)
    for start in range(0, total, chunk_rows):
        yield columns.select(slice(start, min(start + chunk_rows, total)))


class OrderedSum:
    """Mergeable left-to-right float sum, bit-identical to ``sequential_sum``.

    See the module docstring for the deferred/collapsed forms.  ``count``
    tracks how many values have contributed (handy for means).
    """

    __slots__ = ("_segments", "_carry", "count", "collapse")

    def __init__(self, collapse: bool = False) -> None:
        self.collapse = bool(collapse)
        self._segments: List[np.ndarray] = []
        self._carry: Optional[float] = None
        self.count = 0

    def update(self, values: np.ndarray) -> None:
        """Fold the next (in stream order) batch of values in."""
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 1:
            array = array.reshape(-1)
        if array.size == 0:
            return
        self.count += int(array.size)
        if not self.collapse:
            self._segments.append(array)
            return
        if self._carry is not None:
            array = np.concatenate((np.array([self._carry], dtype=np.float64), array))
        # accumulate() is a strict left-to-right fold; with the previous
        # carry as element 0 it continues the exact rounding sequence.
        self._carry = float(np.add.accumulate(array, dtype=np.float64)[-1])

    def merge(self, other: "OrderedSum") -> None:
        """Absorb ``other``, which must cover the stream segment that
        immediately follows this one.

        ``other`` must be deferred; a collapsed right operand has already
        rounded its fold from zero and cannot be continued exactly.
        """
        if other.collapse:
            raise ValueError(
                "cannot merge a collapsed OrderedSum as the right operand; "
                "collapsed sums must be the head of the stream"
            )
        if not self.collapse:
            self._segments.extend(other._segments)
            self.count += other.count
            return
        for segment in other._segments:
            self.update(segment)

    def total(self) -> float:
        """The fold's value so far (0.0 before any update, like ``sum([])``)."""
        if self.collapse:
            return 0.0 if self._carry is None else self._carry
        if not self._segments:
            return 0.0
        if len(self._segments) == 1:
            return sequential_sum(self._segments[0])
        return sequential_sum(np.concatenate(self._segments))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "collapsed" if self.collapse else f"deferred[{len(self._segments)}]"
        return f"OrderedSum({kind}, count={self.count})"
