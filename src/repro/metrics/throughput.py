"""Per-size average access rate metric (the trace-derived Fig. 3).

The batch kernel concatenates the eligible requests' sizes and ``size /
response`` rates in stream order and reduces each size class with
:func:`~repro.trace.sequential_sum`.  The streaming state keeps one
:class:`~repro.metrics.reductions.OrderedSum` per size class; because
chunking preserves stream order and each class's values land in its sum
in that same order, ``finalize()`` reproduces the batch per-size means
bit for bit.

The device-side Fig. 3 measurement (sweeping synthetic back-to-back
requests on an :class:`~repro.emmc.device.EmmcDevice`) is *not* a trace
metric and stays in :mod:`repro.analysis.throughput`.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.trace import Op, OP_WRITE, TraceColumns, sequential_sum

from .base import Metric
from .reductions import OrderedSum


class ThroughputBySizeState:
    """Single-pass, mergeable per-size mean access rates.

    One instance covers one operation type (read or write) over one
    request stream.  ``collapse=True`` keeps each per-size sum O(1) for
    sequential out-of-core consumption; the default deferred form is
    mergeable across contiguous shard splits.
    """

    __slots__ = ("op_code", "collapse", "_sums")

    def __init__(self, op: Op, collapse: bool = False) -> None:
        self.op_code = OP_WRITE if op is Op.WRITE else 0
        self.collapse = bool(collapse)
        self._sums: Dict[int, OrderedSum] = {}

    def update(self, chunk: TraceColumns) -> None:
        """Fold the next chunk (in stream order) in."""
        if len(chunk) == 0:
            return
        response = chunk.response_us
        # NaN response times (incomplete requests) are excluded by the
        # completed mask; silence the comparison warning like the batch
        # kernel does.
        with np.errstate(invalid="ignore"):
            eligible = (
                (chunk.op == self.op_code) & chunk.completed_mask & (response > 0)
            )
        if not eligible.any():
            return
        sizes = chunk.size[eligible]
        rates = sizes / response[eligible]
        for size in np.unique(sizes):
            key = int(size)
            ordered = self._sums.get(key)
            if ordered is None:
                ordered = self._sums[key] = OrderedSum(collapse=self.collapse)
            ordered.update(rates[sizes == size])

    def merge(self, other: "ThroughputBySizeState") -> None:
        """Absorb the summary of the stream segment following this one."""
        if other.op_code != self.op_code:
            raise ValueError("cannot merge throughput summaries of different ops")
        for key, ordered in other._sums.items():
            mine = self._sums.get(key)
            if mine is None:
                self._sums[key] = mine = OrderedSum(collapse=self.collapse)
            mine.merge(ordered)

    def finalize(self) -> Dict[int, float]:
        """Per-size mean rates (MB/s), exactly like the batch kernel."""
        return {
            size: self._sums[size].total() / self._sums[size].count
            for size in sorted(self._sums)
        }


class ThroughputBySizeMetric(Metric):
    """Average access rate per request size for one operation type.

    Two registered instances exist -- one per ``Op`` -- because a metric
    definition is a closed statistic: registry consumers must be able to
    run it without passing extra parameters.
    """

    value_doc = "{size bytes: mean MB/s} of completed requests (Fig. 3, trace-derived)"
    carry_fields = ()  # per-size OrderedSums carry stream order internally

    def __init__(self, op: Op) -> None:
        self.op = op
        suffix = "write" if op is Op.WRITE else "read"
        self.name = f"throughput_by_size_{suffix}"

    def batch(self, columns: TraceColumns, name: str = "") -> Dict[int, float]:
        del name
        return self.batch_traces([columns])

    def batch_traces(self, columns_list) -> Dict[int, float]:
        """The multi-stream batch kernel (the paper pools all 18 traces).

        Sizes/rates of the eligible requests are concatenated in stream
        order, then each size class is reduced with an in-order
        :func:`~repro.trace.sequential_sum` -- exactly the accumulation
        order the scalar reference dict loop performs, so the per-size
        means are bit-identical.
        """
        op_code = OP_WRITE if self.op is Op.WRITE else 0
        size_chunks: List[np.ndarray] = []
        rate_chunks: List[np.ndarray] = []
        for columns in columns_list:
            response = columns.response_us
            with np.errstate(invalid="ignore"):
                eligible = (
                    (columns.op == op_code) & columns.completed_mask & (response > 0)
                )
            size_chunks.append(columns.size[eligible])
            rate_chunks.append(columns.size[eligible] / response[eligible])
        if not size_chunks:
            return {}
        sizes = np.concatenate(size_chunks)
        rates = np.concatenate(rate_chunks)
        result: Dict[int, float] = {}
        for size in np.unique(sizes):
            group = rates[sizes == size]
            result[int(size)] = sequential_sum(group) / int(group.size)
        return result

    def init(self, collapse: bool = False) -> ThroughputBySizeState:
        return ThroughputBySizeState(self.op, collapse=collapse)

    def finalize(self, state: ThroughputBySizeState, name: str = "") -> Dict[int, float]:
        del name
        return state.finalize()


#: The registered singletons (see :mod:`repro.metrics.registry`).
THROUGHPUT_BY_SIZE_READ = ThroughputBySizeMetric(Op.READ)
THROUGHPUT_BY_SIZE_WRITE = ThroughputBySizeMetric(Op.WRITE)
