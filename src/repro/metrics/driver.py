"""Generic execution drivers: fold any metric set with any engine.

Everything downstream of the registry is one of three call shapes:

* :func:`batch_values` -- run each metric's vectorized kernel over one
  in-memory column set (the batch engine);
* :class:`MetricSetState` -- one ``update``/``merge``/``finalize`` state
  bundling a metric set, for the sharded and out-of-core engines;
* :func:`fold_chunks` -- the sequential out-of-core loop in one call.

The streaming trace summary, the ``store stats`` path and the experiment
shard workers are all thin wrappers over these.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Sequence

from repro.trace import TraceColumns

from .base import Metric


def batch_values(
    metrics: Sequence[Metric], columns: TraceColumns, name: str = ""
) -> Dict[str, Any]:
    """Each metric's batch-engine value, keyed by registry name."""
    return {metric.name: metric.batch(columns, name) for metric in metrics}


class MetricSetState:
    """One streaming state per metric in a set, folded together.

    The chunk-boundary carry of each metric lives inside its own state
    object; this class only fans ``update``/``merge`` out and gathers
    ``finalize`` back into a name-keyed dict.
    """

    __slots__ = ("metrics", "states")

    def __init__(self, metrics: Sequence[Metric], collapse: bool = False) -> None:
        self.metrics = tuple(metrics)
        self.states = {m.name: m.init(collapse=collapse) for m in self.metrics}

    def update(self, chunk: TraceColumns) -> None:
        """Fold the next chunk (in stream order) into every metric."""
        for metric in self.metrics:
            metric.update(self.states[metric.name], chunk)

    def merge(self, other: "MetricSetState") -> None:
        """Absorb the states of the stream segment following this one."""
        if other.metrics != self.metrics:
            raise ValueError("cannot merge states over different metric sets")
        for metric in self.metrics:
            metric.merge(self.states[metric.name], other.states[metric.name])

    def finalize(self, name: str = "") -> Dict[str, Any]:
        """Each metric's exact batch-engine value, keyed by registry name."""
        return {
            metric.name: metric.finalize(self.states[metric.name], name)
            for metric in self.metrics
        }


def fold_chunks(
    metrics: Sequence[Metric],
    chunks: Iterable[TraceColumns],
    name: str = "",
    collapse: bool = True,
) -> Dict[str, Any]:
    """The out-of-core engine over a metric set, in one call."""
    state = MetricSetState(metrics, collapse=collapse)
    for chunk in chunks:
        state.update(chunk)
    return state.finalize(name)
