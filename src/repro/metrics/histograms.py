"""Bucketed-distribution metrics (Figs. 4/5/6/7, paper bucket edges).

The batch kernels bin a whole value vector with
:func:`repro.metrics.buckets.histogram` (first matching bucket wins)
and divide integer counts by the total value count.  The streaming
states keep exactly those integers per chunk -- bucket membership is an
element-wise comparison, so chunking cannot change it -- and repeat the
same final division, making ``finalize()`` bit-identical to the batch
result on any chunking and any merge tree.

Only the inter-arrival histogram carries boundary state: the gap that
straddles two chunks (or two merged shards) is computed from the carried
``last_arrival_us`` with the same subtraction ``np.diff`` performs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.trace import TraceColumns, US_PER_MS
from repro.metrics.buckets import (
    Bucket,
    INTERARRIVAL_BUCKETS_MS,
    RESPONSE_BUCKETS_MS,
    SIZE_BUCKETS,
    histogram,
)

from .base import Metric


class HistogramState:
    """Mergeable bucket counts over an arbitrary value stream.

    The generic core: feed raw values via :meth:`update_values`; the
    trace-facing subclasses below extract the right column per chunk.
    """

    __slots__ = ("buckets", "counts", "total")

    def __init__(self, buckets: Sequence[Bucket]) -> None:
        self.buckets = tuple(buckets)
        self.counts = {bucket.label: 0 for bucket in self.buckets}
        self.total = 0

    def update_values(self, values: np.ndarray) -> None:
        """Bin a batch of values (element-wise -- any order)."""
        array = np.asarray(values, dtype=np.float64)
        if array.size == 0:
            return
        self.total += int(array.size)
        remaining = np.ones(array.shape, dtype=bool)
        for bucket in self.buckets:
            matched = remaining & (bucket.low < array) & (array <= bucket.high)
            self.counts[bucket.label] += int(np.count_nonzero(matched))
            remaining &= ~matched

    def merge(self, other: "HistogramState") -> None:
        """Absorb another summary over the same bucket set."""
        if other.buckets != self.buckets:
            raise ValueError("cannot merge histograms over different buckets")
        for label, count in other.counts.items():
            self.counts[label] += count
        self.total += other.total

    def finalize(self) -> Dict[str, float]:
        """Per-bucket fractions, exactly like the batch ``histogram()``."""
        if self.total == 0:
            return {label: 0.0 for label in self.counts}
        return {label: count / self.total for label, count in self.counts.items()}


class SizeHistogramState(HistogramState):
    """Fig. 4 / 7a: request-size distribution over the paper's buckets."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(SIZE_BUCKETS)

    def update(self, chunk: TraceColumns) -> None:
        self.update_values(chunk.size)


class ResponseHistogramState(HistogramState):
    """Fig. 5 / 7b: response-time distribution of completed requests."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(RESPONSE_BUCKETS_MS)

    def update(self, chunk: TraceColumns) -> None:
        completed_mask = chunk.completed_mask
        if completed_mask.any():
            self.update_values(chunk.response_us[completed_mask] / US_PER_MS)


class InterarrivalHistogramState(HistogramState):
    """Fig. 6 / 7c: inter-arrival-time distribution, with boundary state."""

    __slots__ = ("first_arrival_us", "last_arrival_us", "requests")

    def __init__(self) -> None:
        super().__init__(INTERARRIVAL_BUCKETS_MS)
        self.first_arrival_us: Optional[float] = None
        self.last_arrival_us: Optional[float] = None
        self.requests = 0

    def update(self, chunk: TraceColumns) -> None:
        rows = len(chunk)
        if rows == 0:
            return
        arrivals = chunk.arrival_us
        gaps = np.diff(arrivals) if rows > 1 else np.empty(0, dtype=np.float64)
        if self.last_arrival_us is not None:
            crossing = np.array(
                [float(arrivals[0]) - self.last_arrival_us], dtype=np.float64
            )
            gaps = np.concatenate((crossing, gaps))
        self.update_values(gaps / US_PER_MS)
        if self.first_arrival_us is None:
            self.first_arrival_us = float(arrivals[0])
        self.last_arrival_us = float(arrivals[-1])
        self.requests += rows

    def merge(self, other: "InterarrivalHistogramState") -> None:  # type: ignore[override]
        """Absorb the summary of the stream segment following this one."""
        if other.requests == 0:
            return
        if self.requests:
            assert other.first_arrival_us is not None
            assert self.last_arrival_us is not None
            crossing = np.array(
                [other.first_arrival_us - self.last_arrival_us], dtype=np.float64
            )
            self.update_values(crossing / US_PER_MS)
            self.last_arrival_us = other.last_arrival_us
        else:
            self.first_arrival_us = other.first_arrival_us
            self.last_arrival_us = other.last_arrival_us
        HistogramState.merge(self, other)
        self.requests += other.requests


class SizeDistributionMetric(Metric):
    """Fig. 4 / 7a: request-size fractions over the paper's buckets."""

    name = "size_distribution"
    value_doc = "{bucket label: fraction} over SIZE_BUCKETS (Fig. 4/7a)"
    carry_fields = ()  # element-wise binning: order-insensitive

    def batch(self, columns: TraceColumns, name: str = "") -> Dict[str, float]:
        del name
        return histogram(columns.size, SIZE_BUCKETS)

    def init(self, collapse: bool = False) -> SizeHistogramState:
        del collapse  # integer counts: one state form serves both engines
        return SizeHistogramState()

    def finalize(self, state: SizeHistogramState, name: str = "") -> Dict[str, float]:
        del name
        return state.finalize()


class ResponseDistributionMetric(Metric):
    """Fig. 5 / 7b: response-time fractions of completed requests."""

    name = "response_distribution"
    value_doc = "{bucket label: fraction} over RESPONSE_BUCKETS_MS (Fig. 5/7b)"
    carry_fields = ()

    def batch(self, columns: TraceColumns, name: str = "") -> Dict[str, float]:
        del name
        values = columns.response_us[columns.completed_mask] / US_PER_MS
        return histogram(values, RESPONSE_BUCKETS_MS)

    def init(self, collapse: bool = False) -> ResponseHistogramState:
        del collapse
        return ResponseHistogramState()

    def finalize(
        self, state: ResponseHistogramState, name: str = ""
    ) -> Dict[str, float]:
        del name
        return state.finalize()


class InterarrivalDistributionMetric(Metric):
    """Fig. 6 / 7c: inter-arrival-time fractions."""

    name = "interarrival_distribution"
    value_doc = "{bucket label: fraction} over INTERARRIVAL_BUCKETS_MS (Fig. 6/7c)"
    carry_fields = ("first_arrival_us", "last_arrival_us")

    def batch(self, columns: TraceColumns, name: str = "") -> Dict[str, float]:
        del name
        return histogram(columns.inter_arrival_us / US_PER_MS, INTERARRIVAL_BUCKETS_MS)

    def init(self, collapse: bool = False) -> InterarrivalHistogramState:
        del collapse
        return InterarrivalHistogramState()

    def finalize(
        self, state: InterarrivalHistogramState, name: str = ""
    ) -> Dict[str, float]:
        del name
        return state.finalize()


#: The registered singletons (see :mod:`repro.metrics.registry`).
SIZE_DISTRIBUTION = SizeDistributionMetric()
RESPONSE_DISTRIBUTION = ResponseDistributionMetric()
INTERARRIVAL_DISTRIBUTION = InterarrivalDistributionMetric()
