"""Typed events and their deterministic ordering.

Every event carries ``(time_us, priority, seq)`` and the heap pops events
in exactly that lexicographic order.  The per-kind priorities encode the
model's tie-break semantics at *equal* timestamps; they were chosen so the
event-driven device is bit-identical to the old inline arithmetic at
``queue_depth=1``:

* ``COMPLETE`` before everything -- a request finishing at *t* frees its
  queue slot for an arrival at *t* (the old admission filter kept only
  strictly-later finishes outstanding).
* ``IDLE_GC`` before arrivals -- the old model collected when the idle gap
  was ``>= idle_gc_min_gap_us`` (inclusive), so a timer expiring exactly
  at an arrival still collects first.
* ``ARRIVAL`` / ``APP_OP`` next -- host requests and the Android-stack ops
  that generate them.  Arrivals sort ahead of app ops so that monitor
  flushes scheduled at a completion instant are served before a new app op
  at the same instant, matching the old inline submission order.
* ``POWER_DOWN`` last -- the old model entered low power only when the gap
  was *strictly* greater than the threshold, so a dispatch at exactly the
  power deadline cancels the transition.

``seq`` is a global monotone counter: events scheduled earlier win ties,
which is what makes whole-simulation event order reproducible run-to-run
and process-to-process.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class EventKind(enum.Enum):
    """What an event represents; the value is its tie-break priority."""

    COMPLETE = 0
    IDLE_GC = 1
    ARRIVAL = 2
    APP_OP = 3
    POWER_DOWN = 4
    GENERIC = 5
    #: An ECC retry attempt starting after its backoff delay.  Scheduled
    #: only when fault injection is active (see :mod:`repro.faults`), so
    #: it never ties with -- or perturbs -- any fault-free event order;
    #: its priority merely has to be deterministic, and "after GENERIC"
    #: keeps every pre-fault tie-break table unchanged.
    FAULT_RETRY = 6

    @property
    def priority(self) -> int:
        """Tie-break rank at equal timestamps (lower pops first)."""
        return self.value

    @property
    def is_timer(self) -> bool:
        """Timers are speculative: they model "if nothing else happens".

        A drain that only wants to finish outstanding *work* (arrivals,
        completions) can stop once only timers remain -- a trailing idle-GC
        or power-down deadline after the last request must not fire, which
        is exactly the old models' end-of-trace behaviour.
        """
        return self in (EventKind.IDLE_GC, EventKind.POWER_DOWN)


@dataclass
class Event:
    """One scheduled occurrence in the simulation.

    Attributes:
        time_us: when the event fires.
        kind: typed :class:`EventKind` (drives the tie-break priority).
        seq: globally monotone scheduling sequence number.
        callback: invoked as ``callback(event)`` when the event fires.
        payload: arbitrary data for the callback / observability.
        label: short human-readable tag for traces and debugging.
        canceled: lazily-deleted flag (the heap skips canceled events).
    """

    time_us: float
    kind: EventKind
    seq: int
    callback: Optional[Callable[["Event"], None]] = None
    payload: Any = None
    label: str = ""
    canceled: bool = field(default=False, compare=False)
    #: Precomputed ``(time, priority, seq)`` -- heap comparisons are the
    #: hottest path of the kernel, so the key is built exactly once.
    sort_key: tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.sort_key = (self.time_us, self.kind.value, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def cancel(self) -> None:
        """Mark the event so the loop skips it (lazy deletion)."""
        self.canceled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " canceled" if self.canceled else ""
        tag = f" {self.label}" if self.label else ""
        return f"Event({self.kind.name}@{self.time_us}#{self.seq}{tag}{state})"
