"""Serially-reusable resources: the timing primitive of the device model.

A :class:`ResourceTimeline` models one resource that serves at most one
operation at a time -- the eMMC controller, one channel bus, one die (or
plane).  Operations reserve ``[start, start + duration)`` windows in
arrival order with no preemption:

    ``start = max(next_free, earliest)``; ``next_free = start + duration``

This is exactly the ``max()`` arithmetic the old ``EmmcDevice._schedule``
inlined for its ``_controller_avail`` / ``_channel_avail[i]`` /
``_unit_avail[i]`` floats -- extracting it verbatim is what keeps the
refactor bit-identical -- but the timeline additionally accumulates busy
time and reservation counts, giving per-resource utilization telemetry
for free.

Under FIFO no-preemption service (the paper's eMMC: a single command
queue, sub-requests served in order), reserving eagerly at request
dispatch is provably equivalent to stepping an event per resource grant:
no later event can change an earlier reservation.  That equivalence is
what lets :class:`repro.emmc.device.EmmcDevice` answer ``submit()``
synchronously while the surrounding kernel stays event-driven.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


class ResourceTimeline:
    """One serially-reusable resource's reservation frontier."""

    __slots__ = ("name", "next_free_us", "busy_us", "reservations")

    def __init__(self, name: str = "resource", free_at_us: float = 0.0) -> None:
        self.name = name
        self.next_free_us = float(free_at_us)
        self.busy_us = 0.0
        self.reservations = 0

    def reserve(self, earliest_us: float, duration_us: float) -> Tuple[float, float]:
        """Claim the next ``duration_us`` window at or after ``earliest_us``.

        Returns ``(start, end)`` and advances the frontier to ``end``.
        """
        start = max(self.next_free_us, earliest_us)
        end = start + duration_us
        self.next_free_us = end
        self.busy_us += duration_us
        self.reservations += 1
        return start, end

    def peek(self, earliest_us: float, duration_us: float) -> Tuple[float, float]:
        """The window :meth:`reserve` would grant, without claiming it."""
        start = max(self.next_free_us, earliest_us)
        return start, start + duration_us

    def is_free_at(self, time_us: float) -> bool:
        """Whether the resource is idle at ``time_us``."""
        return time_us >= self.next_free_us

    def utilization(self, horizon_us: float) -> float:
        """Busy fraction over ``[0, horizon_us]`` (0 for a zero horizon)."""
        if horizon_us <= 0:
            return 0.0
        return min(1.0, self.busy_us / horizon_us)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResourceTimeline({self.name!r}, next_free={self.next_free_us}, "
            f"busy={self.busy_us}, n={self.reservations})"
        )


class ResourcePool:
    """An indexed family of identical timelines (channels, dies, planes)."""

    __slots__ = ("name", "_timelines")

    def __init__(self, count: int, name: str = "pool") -> None:
        if count < 1:
            raise ValueError(f"a resource pool needs >= 1 member, got {count}")
        self.name = name
        self._timelines: List[ResourceTimeline] = [
            ResourceTimeline(f"{name}[{index}]") for index in range(count)
        ]

    def __len__(self) -> int:
        return len(self._timelines)

    def __getitem__(self, index: int) -> ResourceTimeline:
        return self._timelines[index]

    def __iter__(self) -> Iterator[ResourceTimeline]:
        return iter(self._timelines)

    def reserve(self, index: int, earliest_us: float, duration_us: float):
        """Reserve on member ``index``; returns ``(start, end)``."""
        return self._timelines[index].reserve(earliest_us, duration_us)

    @property
    def busy_us(self) -> float:
        """Total busy time across all members."""
        return sum(timeline.busy_us for timeline in self._timelines)

    @property
    def reservations(self) -> int:
        """Total reservations across all members."""
        return sum(timeline.reservations for timeline in self._timelines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResourcePool({self.name!r}, n={len(self._timelines)})"
