"""repro.sim: the shared discrete-event simulation kernel.

The paper's HPS case study rests on a modified SSDsim -- a genuinely
event-driven simulator.  This package is our equivalent substrate: a
single simulated clock, a heap-based event loop with typed events and
deterministic tie-breaking, serially-reusable resource timelines, and the
host-side admission queue.  ``repro.emmc`` schedules device work on it,
``repro.android`` schedules application ops and monitor flushes on it,
and ``repro.experiments`` replays traces through the
:class:`Host` -> :class:`AdmissionQueue` -> device pipeline.

Layering: this package depends only on :mod:`repro.trace`; everything
else depends on it.
"""

from .clock import SimClock, SimTimeError
from .events import Event, EventKind
from .host import Host, replay_trace
from .loop import EventLoop, SimInterrupt, TracePoint
from .queueing import AdmissionQueue
from .resources import ResourcePool, ResourceTimeline

__all__ = [
    "AdmissionQueue",
    "Event",
    "EventKind",
    "EventLoop",
    "Host",
    "ResourcePool",
    "ResourceTimeline",
    "SimClock",
    "SimInterrupt",
    "SimTimeError",
    "TracePoint",
    "replay_trace",
]
