"""The heap-based discrete-event loop shared by device and Android stack.

One :class:`EventLoop` instance is the beating heart of a simulation: the
device schedules request completions and idle/power timers on it, the
Android stack schedules application ops and monitor-flush arrivals, and
everything is processed in the deterministic ``(time, priority, seq)``
order defined by :mod:`repro.sim.events`.

Two drain styles:

* :meth:`run_until` -- process everything due up to (and including) a
  time; used by the synchronous ``EmmcDevice.submit`` path, which keeps
  the old closed-loop collection methodology bit-identical.
* :meth:`drain` -- process until only speculative timers remain; used for
  whole-trace replay and stack runs, where a trailing idle-GC or
  power-down deadline after the last request must not fire.

The loop records an optional event trace so tests can assert *identical
event order* across runs and processes.  Recording goes through a
:class:`repro.telemetry.Telemetry` sink (``kernel_events``); the old
``record_events`` flag and ``event_trace`` list survive as a thin
compatibility shim over an auto-created sink.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.telemetry import Telemetry

from .clock import SimClock, SimTimeError
from .events import Event, EventKind

#: One recorded trace entry: (time_us, priority, seq, kind name, label).
TracePoint = Tuple[float, int, int, str, str]


class SimInterrupt(RuntimeError):
    """The loop was cut (power loss) before firing its next event.

    Raised by :meth:`EventLoop.step` / :meth:`EventLoop.run_until` when an
    :meth:`EventLoop.interrupt_before` deadline is reached: exactly
    ``processed`` events have fired and the next live event (if any) has
    *not*.  The clock still reads the time of the last fired event, which
    is the instant the simulated power was lost.
    """

    def __init__(self, processed: int, now_us: float) -> None:
        super().__init__(f"simulation interrupted after {processed} events at {now_us}us")
        self.processed = processed
        self.now_us = now_us


class EventLoop:
    """Deterministic discrete-event scheduler around a :class:`SimClock`."""

    def __init__(
        self,
        start_us: float = 0.0,
        record_events: bool = False,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.clock = SimClock(start_us)
        self._heap: List[Event] = []
        self._seq = 0
        #: Pending non-timer events (arrivals, completions, app ops).
        self._material_pending = 0
        #: Counters: events processed / scheduled / canceled so far.
        self.processed = 0
        self.scheduled = 0
        self.cancellations = 0
        #: Telemetry sink; ``None`` = nothing recorded (the hot path takes
        #: no recording branch).  ``record_events=True`` without an
        #: explicit sink auto-creates a private one (the legacy shim).
        self.telemetry = telemetry
        self._auto_sink = False
        if record_events and telemetry is None:
            self.telemetry = Telemetry()
            self._auto_sink = True
        #: Interrupt (power-loss) deadline: raise before firing event number
        #: ``_interrupt_before`` (0-based count of processed events).
        self._interrupt_before: Optional[int] = None

    # -- event-trace recording (telemetry sink + compatibility shim) -------------

    @property
    def record_events(self) -> bool:
        """Whether fired events are being recorded (a sink is attached)."""
        return self.telemetry is not None

    @record_events.setter
    def record_events(self, value: bool) -> None:
        """Legacy switch: toggle recording onto a private auto-sink.

        Setting ``True`` attaches a fresh private sink if none is
        present; setting ``False`` detaches only an auto-created sink --
        an explicitly attached device/session sink is never silently
        dropped by the legacy flag.
        """
        if value:
            if self.telemetry is None:
                self.telemetry = Telemetry()
                self._auto_sink = True
        elif self._auto_sink:
            self.telemetry = None
            self._auto_sink = False

    @property
    def event_trace(self) -> List[TracePoint]:
        """Recorded kernel events (the attached sink's ``kernel_events``).

        The live list, not a copy -- appends by ``_fire`` are visible to
        holders.  Empty when no sink is attached.
        """
        if self.telemetry is None:
            return []
        return self.telemetry.kernel_events

    #: Alias: the telemetry-era name for the same recorded-event list.
    recorded_events = event_trace

    def successor(self, start_us: float) -> "EventLoop":
        """A fresh loop continuing this one's recording policy.

        Used by power-loss recovery: an explicitly attached sink (device
        telemetry) survives the power cycle -- spans are replay-lifetime
        state like ``DeviceStats`` -- while a legacy auto-sink is
        replaced by an empty one, preserving the old semantics that
        ``event_trace`` holds post-recovery events only.
        """
        if self.telemetry is None:
            return EventLoop(start_us=start_us)
        if self._auto_sink:
            return EventLoop(start_us=start_us, record_events=True)
        return EventLoop(start_us=start_us, telemetry=self.telemetry)

    # -- introspection -----------------------------------------------------------

    @property
    def now_us(self) -> float:
        """Current simulated time."""
        return self.clock.now_us

    def __len__(self) -> int:
        """Number of scheduled-and-not-canceled events still pending."""
        return sum(1 for event in self._heap if not event.canceled)

    def pending_material(self) -> int:
        """Pending non-timer events (work that must still be processed)."""
        return self._material_pending

    def peek_time(self) -> Optional[float]:
        """Fire time of the next live event, or ``None`` when drained."""
        self._discard_canceled()
        return self._heap[0].time_us if self._heap else None

    # -- scheduling --------------------------------------------------------------

    def schedule(
        self,
        time_us: float,
        callback: Optional[Callable[[Event], None]] = None,
        kind: EventKind = EventKind.GENERIC,
        payload: Any = None,
        label: str = "",
    ) -> Event:
        """Add an event at ``time_us``; refuses times before the clock."""
        if time_us < self.clock.now_us:
            raise SimTimeError(
                f"cannot schedule {kind.name} at {time_us}: "
                f"clock already at {self.clock.now_us}"
            )
        event = Event(
            time_us=time_us,
            kind=kind,
            seq=self._seq,
            callback=callback,
            payload=payload,
            label=label,
        )
        self._seq += 1
        self.scheduled += 1
        if not kind.is_timer:
            self._material_pending += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a pending event (no-op for ``None`` or already-canceled)."""
        if event is None or event.canceled:
            return
        event.cancel()
        self.cancellations += 1
        if not event.kind.is_timer:
            self._material_pending -= 1

    def interrupt_before(self, event_count: int) -> None:
        """Arm a power-loss cut before the ``event_count``-th fired event.

        Once ``event_count`` events have been processed, the next attempt
        to fire one raises :class:`SimInterrupt` instead.  ``0`` means the
        very next event; counting is from loop creation (``processed``).
        Disarm with ``interrupt_before(None)``.
        """
        if event_count is not None and event_count < 0:
            raise ValueError("interrupt deadline must be non-negative")
        self._interrupt_before = event_count

    def _check_interrupt(self) -> None:
        """Raise (and disarm) if the interrupt deadline has been reached."""
        if self._interrupt_before is not None and self.processed >= self._interrupt_before:
            self._interrupt_before = None
            raise SimInterrupt(self.processed, self.clock.now_us)

    # -- processing --------------------------------------------------------------

    def _discard_canceled(self) -> None:
        while self._heap and self._heap[0].canceled:
            heapq.heappop(self._heap)

    def _fire(self, event: Event) -> None:
        self.clock.advance_to(event.time_us)
        if not event.kind.is_timer:
            self._material_pending -= 1
        self.processed += 1
        if self.telemetry is not None:
            self.telemetry.kernel_events.append(
                (event.time_us, event.kind.priority, event.seq,
                 event.kind.name, event.label)
            )
        if event.callback is not None:
            event.callback(event)

    def step(self) -> bool:
        """Fire the single next live event; False when nothing is pending.

        Raises :class:`SimInterrupt` when an armed
        :meth:`interrupt_before` deadline is due and an event would fire.
        """
        self._discard_canceled()
        if not self._heap:
            return False
        self._check_interrupt()
        self._fire(heapq.heappop(self._heap))
        return True

    def run_until(self, time_us: float) -> int:
        """Fire every event due at or before ``time_us``; advance the clock.

        Returns the number of events fired.  Events scheduled *during*
        processing are themselves fired when due within the window.
        """
        fired = 0
        while True:
            self._discard_canceled()
            if not self._heap or self._heap[0].time_us > time_us:
                break
            self._check_interrupt()
            self._fire(heapq.heappop(self._heap))
            fired += 1
        if time_us > self.clock.now_us:
            self.clock.advance_to(time_us)
        return fired

    def run(self) -> int:
        """Fire absolutely everything, timers included; returns the count."""
        fired = 0
        while self.step():
            fired += 1
        return fired

    def drain(self) -> int:
        """Fire events until only speculative timers remain.

        Timers *preceding* material work still fire (an idle-GC deadline
        between two bursts is real); timers trailing the last arrival or
        completion are left pending, matching the old end-of-run
        semantics where nothing happens after the final request.
        """
        fired = 0
        while self._material_pending > 0 and self.step():
            fired += 1
        return fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventLoop(now={self.clock.now_us}, pending={len(self)}, "
            f"processed={self.processed})"
        )
