"""The host admission queue: ``queue_depth`` slots between host and device.

eMMC exposes a single command queue (depth 1) -- the configuration the
paper measures -- while deeper queues model the "parallel request queues
at the OS layer" idea of Implication 1.  The admission queue answers one
question: *when may a request that arrived at time t be dispatched?*

* depth 1: when the device finished everything before it
  (``max(arrival, busy_until)`` -- the paper's FIFO single queue);
* depth k: immediately if a slot is free, else when the earliest
  in-flight request completes (min-heap pop).

Completions are communicated by :meth:`on_dispatch`'s finish time: under
FIFO no-preemption service a request's finish is fixed at dispatch, so
eagerly pushing it is equivalent to popping a COMPLETE event -- the
event-loop ordering guarantees arrivals only ever observe finishes that
are causally before them.

The queue also keeps the admission statistics the old inline code never
had: dispatches, slot waits, and the high-water in-flight mark.
"""

from __future__ import annotations

import heapq
from typing import List


class AdmissionQueue:
    """Tracks in-flight requests and grants dispatch times."""

    __slots__ = ("depth", "_busy_until_us", "_in_flight", "dispatches",
                 "slot_waits", "max_in_flight")

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError("queue depth must be at least 1")
        self.depth = depth
        #: depth == 1: finish time of the last dispatched request.
        self._busy_until_us = 0.0
        #: depth > 1: min-heap of in-flight finish times.
        self._in_flight: List[float] = []
        self.dispatches = 0
        self.slot_waits = 0
        self.max_in_flight = 0

    def admit(self, arrival_us: float) -> float:
        """Earliest dispatch time for a request arriving at ``arrival_us``."""
        self.dispatches += 1
        if self.depth == 1:
            dispatch = max(arrival_us, self._busy_until_us)
            if dispatch > arrival_us:
                self.slot_waits += 1
            return dispatch
        # Requests finished by `arrival_us` have left the queue.
        while self._in_flight and self._in_flight[0] <= arrival_us:
            heapq.heappop(self._in_flight)
        if len(self._in_flight) < self.depth:
            return arrival_us
        # All slots busy: wait for the earliest in-flight completion.
        slot_free = heapq.heappop(self._in_flight)
        self.slot_waits += 1
        return max(arrival_us, slot_free)

    def on_dispatch(self, finish_us: float) -> None:
        """Record a dispatched request that will complete at ``finish_us``."""
        if self.depth == 1:
            self._busy_until_us = max(self._busy_until_us, finish_us)
            self.max_in_flight = max(self.max_in_flight, 1)
            return
        heapq.heappush(self._in_flight, finish_us)
        self.max_in_flight = max(self.max_in_flight, len(self._in_flight))

    @property
    def busy_until_us(self) -> float:
        """When the device drains fully, as currently known."""
        if self.depth == 1:
            return self._busy_until_us
        return max(self._in_flight) if self._in_flight else 0.0

    def in_flight_at(self, time_us: float) -> int:
        """Number of requests still in flight at ``time_us``."""
        if self.depth == 1:
            return 1 if self._busy_until_us > time_us else 0
        return sum(1 for finish in self._in_flight if finish > time_us)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdmissionQueue(depth={self.depth}, "
            f"dispatches={self.dispatches}, slot_waits={self.slot_waits})"
        )
