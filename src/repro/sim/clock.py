"""The simulation clock: a single monotone notion of "now".

Before this kernel existed, every layer kept its own private clock --
``EmmcDevice`` tracked ``_last_finish`` and per-resource availability
floats, ``AndroidStack`` serialized through ``_last_submit_us``, and the
power/idle-GC bookkeeping re-derived time from activity gaps.  The
``SimClock`` replaces all of those with one authoritative event time that
only ever moves forward.

Times are microseconds throughout, matching :mod:`repro.trace`.
"""

from __future__ import annotations


class SimTimeError(ValueError):
    """Raised when an operation would move simulated time backwards."""


class SimClock:
    """Monotone simulation time, advanced only by the event loop."""

    __slots__ = ("_now_us",)

    def __init__(self, start_us: float = 0.0) -> None:
        if start_us < 0:
            raise SimTimeError(f"clock cannot start before zero: {start_us}")
        self._now_us = float(start_us)

    @property
    def now_us(self) -> float:
        """Current simulated time, microseconds."""
        return self._now_us

    def advance_to(self, time_us: float) -> float:
        """Move the clock forward to ``time_us`` (no-op when already there).

        Raises :class:`SimTimeError` on an attempt to move backwards -- the
        invariant that makes event processing causally sound.
        """
        if time_us < self._now_us:
            raise SimTimeError(
                f"cannot advance clock backwards: {time_us} < {self._now_us}"
            )
        self._now_us = time_us
        return self._now_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now_us={self._now_us})"
