"""The host side of the simulation: Host -> Queue -> Device.

The experiment harness used to call ``EmmcDevice.replay`` directly; the
:class:`Host` is now the front door.  It schedules every trace request as
a typed ``ARRIVAL`` event on the device's kernel and drains the loop, so
open-loop replay, closed-loop collection and the Android stack all enter
the device the same way -- through the event loop and the admission
queue -- instead of three slightly different inline paths.

For a trace sorted by arrival time this is bit-identical to the old
request-at-a-time loop: arrivals fire in ``(time, seq)`` order, which *is*
trace order, and each arrival runs the same admission/expansion/timing
pipeline.  What it adds is the seam the roadmap needs: out-of-order
producers (concurrent apps, monitor flushes) can schedule arrivals at
their natural times and the kernel serializes them correctly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.trace import Request, Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.emmc.device import EmmcDevice, ReplayResult


class Host:
    """Submits block requests to a device through its event kernel."""

    def __init__(self, device: "EmmcDevice") -> None:
        self.device = device
        self.kernel = device.kernel

    def submit(self, request: Request) -> Request:
        """Serve one request synchronously (closed-loop callers).

        Requests must be submitted in non-decreasing arrival order; the
        kernel enforces this (the clock cannot move backwards).
        """
        return self.device.submit(request)

    def replay(
        self,
        trace: Trace,
        on_complete: Optional[Callable[[Request], None]] = None,
    ) -> "ReplayResult":
        """Serve every request of ``trace`` in arrival order.

        Returns the trace with device timestamps filled in plus the device
        statistics -- the paper's replay methodology for Figs. 8 and 9.
        ``on_complete`` (if given) fires at each request's completion
        *event*, in completion order.

        When the replay is eligible (queue_depth=1, no RAM buffer, no
        faults, no foreign kernel events -- see
        :mod:`repro.replay.preconditions`) it is lowered onto the
        two-pass columnar fast path, which is bit-identical to the event
        kernel; anything else, or ``REPRO_REPLAY_FASTPATH=off``, takes
        the event loop below.  ``on_complete`` observers always use the
        kernel: they watch COMPLETE events fire.
        """
        from repro.emmc.device import ReplayResult  # local: avoids cycle

        if on_complete is None:
            from repro.replay import maybe_fast_replay  # local: avoids cycle

            fast = maybe_fast_replay(self.device, trace)
            if fast is not None:
                return fast

        completed: List[Request] = []
        for request in trace:
            self.device.arrive(
                request,
                on_complete=on_complete,
                record_to=completed,
            )
        self.kernel.drain()
        return ReplayResult(
            trace=trace.with_requests(completed),
            stats=self.device.stats,
            config_name=self.device.config.name,
        )


def replay_trace(device: "EmmcDevice", trace: Trace) -> "ReplayResult":
    """Convenience: ``Host(device).replay(trace)``."""
    return Host(device).replay(trace)
