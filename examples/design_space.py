#!/usr/bin/env python3
"""Design-space exploration: page organization x parallelism x cell mode.

Usage::

    python examples/design_space.py [app-name]

Sweeps a grid of eMMC designs -- page scheme (4PS/8PS/HPS/HPS-SLC),
channel count, and multi-plane commands -- on one workload and prints a
ranked table of mean response time, space utilization and raw capacity,
i.e. the kind of exploration the paper's implications are meant to guide.
"""

import dataclasses
import sys

from repro.analysis import render_table
from repro.emmc import EmmcDevice, eight_ps, four_ps, hps, hps_slc
from repro.workloads import ALL_TRACES, generate_trace


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "Twitter"
    if app not in ALL_TRACES:
        raise SystemExit(f"unknown app {app!r}; pick one of: {', '.join(ALL_TRACES)}")

    print(f"Sweeping 16 designs on the {app} trace ...")
    trace = generate_trace(app)
    rows = []
    for scheme_factory in (four_ps, eight_ps, hps, hps_slc):
        for channels in (2, 4):
            for multi_plane in (False, True):
                base = scheme_factory()
                geometry = dataclasses.replace(base.geometry, channels=channels)
                config = base.with_overrides(
                    geometry=geometry, multi_plane=multi_plane
                )
                result = EmmcDevice(config).replay(trace.without_timing())
                rows.append(
                    [
                        base.name,
                        channels,
                        "yes" if multi_plane else "no",
                        result.stats.mean_response_ms,
                        result.stats.space_utilization,
                        geometry.capacity_bytes() // 2**30,
                    ]
                )
    rows.sort(key=lambda row: row[3])
    print()
    print(render_table(
        ["Scheme", "Channels", "Multi-plane", "MRT ms", "Space util", "GiB"],
        rows,
        title=f"Designs ranked by mean response time ({app})",
    ))
    print(
        "\nNote how extra channels/multi-plane buy little at this load "
        "(Implication 1), while the page organization and SLC mode move "
        "the needle -- at capacity or utilization cost."
    )


if __name__ == "__main__":
    main()
