#!/usr/bin/env python3
"""Show the HPS die structure (Fig. 10) and the distributor's splitting.

Usage::

    python examples/hps_structure.py
"""

from repro.trace import KIB, Op, Request
from repro.emmc import (
    RequestDistributor,
    describe_die,
    eight_ps,
    four_ps,
    hps,
    table_v_configs,
)


def main() -> None:
    print("Table V device structures (one die each):\n")
    for config in table_v_configs().values():
        print(describe_die(config))
        print()

    print("Request distributor splits (the paper's 20 KB example):")
    request = Request(arrival_us=0.0, lba=0, size=20 * KIB, op=Op.WRITE)
    for config in (four_ps(), eight_ps(), hps()):
        distributor = RequestDistributor(config.geometry.kinds())
        groups = distributor.split_write(request)
        consumed = distributor.flash_bytes_for(request)
        split = " + ".join(str(group.kind) for group in groups)
        print(
            f"  {config.name}: {split}  -> {consumed // KIB} KiB consumed "
            f"(utilization {request.size / consumed:.1%})"
        )


if __name__ == "__main__":
    main()
