#!/usr/bin/env python3
"""The paper's case study in miniature: HPS vs 4PS vs 8PS (Figs. 8 and 9).

Usage::

    python examples/hps_vs_baselines.py [app ...]

Replays the chosen traces (default: one light and one heavy) on all three
Table V device configurations and prints mean response time and space
utilization side by side.
"""

import sys

from repro.analysis import render_table
from repro.emmc import EmmcDevice, eight_ps, four_ps, hps
from repro.workloads import ALL_TRACES, generate_trace

DEFAULT_APPS = ["Twitter", "Booting"]


def main() -> None:
    apps = sys.argv[1:] or DEFAULT_APPS
    unknown = [a for a in apps if a not in ALL_TRACES]
    if unknown:
        raise SystemExit(f"unknown apps: {unknown}")

    rows = []
    for app in apps:
        print(f"Replaying {app} on 4PS, 8PS and HPS ...")
        trace = generate_trace(app)
        mrt = {}
        utilization = {}
        for config in (four_ps(), eight_ps(), hps()):
            result = EmmcDevice(config).replay(trace.without_timing())
            mrt[config.name] = result.stats.mean_response_ms
            utilization[config.name] = result.stats.space_utilization
        rows.append([
            app,
            mrt["4PS"], mrt["8PS"], mrt["HPS"],
            f"{(1 - mrt['HPS'] / mrt['4PS']) * 100:.1f}%",
            utilization["8PS"],
            f"{(utilization['HPS'] / utilization['8PS'] - 1) * 100:.1f}%",
        ])
    print()
    print(render_table(
        ["App", "4PS MRT ms", "8PS MRT ms", "HPS MRT ms",
         "HPS vs 4PS", "8PS util", "HPS vs 8PS util"],
        rows,
        title="Case study (paper: MRT up to -86% vs 4PS; util up to +24.2% vs 8PS)",
    ))


if __name__ == "__main__":
    main()
