#!/usr/bin/env python3
"""Characterize one application's I/O like the paper's Section III.

Usage::

    python examples/characterize_workload.py [app-name] [--quick]

Prints the Table III and Table IV rows for the application (measured on a
closed-loop collection, next to the published values) plus its Fig. 4/5/6
histograms.
"""

import sys

from repro.analysis import (
    interarrival_distribution,
    render_histogram_table,
    render_table,
    response_distribution,
    size_distribution,
    size_stats,
    timing_stats,
)
from repro.workloads import ALL_TRACES, TABLE_III, TABLE_IV, collect


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("-")]
    app = args[0] if args else "Messaging"
    quick = "--quick" in sys.argv
    if app not in ALL_TRACES:
        raise SystemExit(f"unknown app {app!r}; pick one of: {', '.join(ALL_TRACES)}")

    print(f"Collecting {app} closed-loop on the reference device ...")
    result = collect(app, num_requests=2000 if quick else None)
    trace = result.trace

    sizes = size_stats(trace)
    p3 = TABLE_III[app]
    print(render_table(
        ["Metric", "Measured", "Paper"],
        [
            ["Requests", f"{sizes.num_requests:,}", f"{p3.num_requests:,}"],
            ["Data size (KiB)", f"{sizes.data_size_kib:,.0f}", f"{p3.data_size_kib:,}"],
            ["Avg size (KiB)", sizes.avg_size_kib, p3.avg_size_kib],
            ["Avg read (KiB)", sizes.avg_read_kib, p3.avg_read_kib],
            ["Avg write (KiB)", sizes.avg_write_kib, p3.avg_write_kib],
            ["Write req %", sizes.write_req_pct, p3.write_req_pct],
            ["Write size %", sizes.write_size_pct, p3.write_size_pct],
        ],
        title=f"\nTable III row -- {app}",
    ))

    timing = timing_stats(trace)
    p4 = TABLE_IV[app]
    print(render_table(
        ["Metric", "Measured", "Paper"],
        [
            ["Duration (s)", timing.duration_s, p4.duration_s],
            ["Arrival rate (req/s)", timing.arrival_rate, p4.arrival_rate],
            ["Access rate (KiB/s)", timing.access_rate_kib_s, p4.access_rate_kib_s],
            ["No-wait %", timing.nowait_pct, p4.nowait_pct],
            ["Mean service (ms)", timing.mean_service_ms, p4.mean_service_ms],
            ["Mean response (ms)", timing.mean_response_ms, p4.mean_response_ms],
            ["Spatial locality %", timing.spatial_locality_pct, p4.spatial_locality_pct],
            ["Temporal locality %", timing.temporal_locality_pct, p4.temporal_locality_pct],
        ],
        title=f"\nTable IV row -- {app}",
    ))

    print()
    print(render_histogram_table(
        [app], [size_distribution(trace)], title="Fig. 4 row: request sizes (%)"
    ))
    print()
    print(render_histogram_table(
        [app], [response_distribution(trace)], title="Fig. 5 row: response times (%)"
    ))
    print()
    print(render_histogram_table(
        [app], [interarrival_distribution(trace)],
        title="Fig. 6 row: inter-arrival times (%)",
    ))


if __name__ == "__main__":
    main()
