#!/usr/bin/env python3
"""Replay a real blktrace/blkparse log on the simulated eMMC designs.

Usage::

    python examples/replay_blktrace.py [blkparse.txt]

Without an argument, a small embedded sample is used.  The script parses
the blkparse text, prints the workload's characteristics, and replays it
on the three Table V device designs.
"""

import sys

from repro.trace import parse_blkparse
from repro.analysis import render_table, size_stats, timing_stats
from repro.emmc import EmmcDevice, eight_ps, four_ps, hps

SAMPLE = """\
8,16  0  1   0.000000000  100  Q  W  2048 + 24 [sqlite]
8,16  0  2   0.000050000  100  D  W  2048 + 24 [sqlite]
8,16  0  3   0.001800000    0  C  W  2048 + 24 [0]
8,16  0  4   0.010000000  100  Q  W  4096 + 8 [sqlite]
8,16  0  5   0.010040000  100  D  W  4096 + 8 [sqlite]
8,16  0  6   0.011500000    0  C  W  4096 + 8 [0]
8,16  0  7   0.050000000  101  Q  R  131072 + 512 [mediaserver]
8,16  0  8   0.050100000  101  D  R  131072 + 512 [mediaserver]
8,16  0  9   0.056000000    0  C  R  131072 + 512 [0]
8,16  0 10   0.200000000  100  Q  W  4160 + 8 [sqlite]
8,16  0 11   0.200030000  100  D  W  4160 + 8 [sqlite]
8,16  0 12   0.201400000    0  C  W  4160 + 8 [0]
"""


def main() -> None:
    if len(sys.argv) > 1:
        trace = parse_blkparse(sys.argv[1])
        print(f"parsed {sys.argv[1]}")
    else:
        trace = parse_blkparse(SAMPLE, name="sample")
        print("no file given; using the embedded 4-request sample")

    sizes = size_stats(trace)
    print(
        f"{sizes.num_requests} requests, {sizes.write_req_pct:.0f}% writes, "
        f"avg {sizes.avg_size_kib:.1f} KiB, max {sizes.max_size_kib:.0f} KiB"
    )
    original = timing_stats(trace)
    if trace.completed:
        print(
            f"as recorded: mean service {original.mean_service_ms:.2f} ms, "
            f"no-wait {original.nowait_pct:.0f}%"
        )

    rows = []
    for config in (four_ps(), eight_ps(), hps()):
        result = EmmcDevice(config).replay(trace.without_timing())
        stats = result.stats
        rows.append(
            [config.name, stats.mean_response_ms, stats.mean_service_ms,
             stats.space_utilization]
        )
    print()
    print(render_table(
        ["Scheme", "MRT ms", "Mean service ms", "Space utilization"], rows,
        title="Replay on the three Table V designs",
    ))


if __name__ == "__main__":
    main()
