#!/usr/bin/env python3
"""Collect a trace mechanistically through the simulated Android stack.

Usage::

    python examples/android_stack_trace.py [app-name] [duration-seconds]

Runs an application behaviour model through SQLite -> page cache -> ext4 ->
block layer -> eMMC driver -> device (the paper's Fig. 1 stack), with
BIOtracer recording at the bottom, then prints what each layer did -- the
"smart layers" write amplification and the monitor's ~2 % overhead.
"""

import sys

from repro.analysis import size_distribution, size_stats
from repro.android import ARCHETYPES, collect_trace


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "Messaging"
    duration_s = float(sys.argv[2]) if len(sys.argv) > 2 else 300.0
    if app not in ARCHETYPES:
        raise SystemExit(f"unknown app {app!r}; pick one of: {', '.join(ARCHETYPES)}")

    print(f"Running {app} for {duration_s:.0f} simulated seconds ...")
    result = collect_trace(app, duration_s=duration_s)
    trace = result.trace
    stats = size_stats(trace)

    print(f"\nBlock-level trace collected by BIOtracer: {stats.num_requests} requests")
    print(f"  write requests: {stats.write_req_pct:.1f}%  "
          f"avg size: {stats.avg_size_kib:.1f} KiB  max: {stats.max_size_kib:.0f} KiB")
    histogram = size_distribution(trace)
    print("  size histogram: " + "  ".join(
        f"{label}={share * 100:.0f}%" for label, share in histogram.items() if share
    ))

    print("\nPer-layer activity:")
    sqlite = result.sqlite_stats
    print(f"  SQLite: {sqlite.transactions} transactions, {sqlite.queries} queries, "
          f"write amplification {sqlite.write_amplification:.2f}x")
    cache = result.cache_stats
    print(f"  Page cache: {cache.writes_buffered} buffered writes, "
          f"{cache.read_hits}/{cache.read_hits + cache.read_misses} read hits")
    ext4 = result.ext4_stats
    print(f"  ext4: {ext4.journal_commits} journal commits, "
          f"{ext4.metadata_writes} metadata writes")
    block = result.block_stats
    print(f"  Block layer: merge ratio {block.merge_ratio:.2f}x")
    driver = result.driver_stats
    print(f"  eMMC driver: packing ratio {driver.packing_ratio:.2f}x")
    tracer = result.tracer_stats
    print(f"  BIOtracer: {tracer.flushes} buffer flushes, "
          f"overhead {tracer.overhead_ratio * 100:.2f}% (paper: ~2%)")


if __name__ == "__main__":
    main()
