#!/usr/bin/env python3
"""Quickstart: generate a smartphone trace and replay it on two eMMC designs.

Runs in a few seconds::

    python examples/quickstart.py [app-name]

Generates the calibrated synthetic trace for one application (default:
Twitter), replays it on the conventional pure-4KB-page device (4PS) and on
the paper's hybrid-page-size device (HPS), and prints the comparison the
paper's case study is about.
"""

import sys

from repro.analysis import size_stats, timing_stats
from repro.emmc import EmmcDevice, four_ps, hps
from repro.workloads import ALL_TRACES, generate_trace


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "Twitter"
    if app not in ALL_TRACES:
        raise SystemExit(f"unknown app {app!r}; pick one of: {', '.join(ALL_TRACES)}")

    print(f"Generating the calibrated {app} trace ...")
    trace = generate_trace(app)
    sizes = size_stats(trace)
    print(
        f"  {sizes.num_requests:,} requests, {sizes.data_size_kib / 1024:.1f} MiB accessed, "
        f"{sizes.write_req_pct:.1f}% writes, avg request {sizes.avg_size_kib:.1f} KiB"
    )

    for config in (four_ps(), hps()):
        device = EmmcDevice(config)
        result = device.replay(trace.without_timing())
        timing = timing_stats(result.trace)
        print(
            f"  {config.name}: mean response {timing.mean_response_ms:6.2f} ms, "
            f"mean service {timing.mean_service_ms:5.2f} ms, "
            f"no-wait {timing.nowait_pct:4.1f}%, "
            f"space utilization {result.stats.space_utilization:.3f}"
        )
    print("HPS serves the same trace faster at 4PS's perfect space utilization.")


if __name__ == "__main__":
    main()
