#!/usr/bin/env python3
"""Fleet simulation: a 500-device population with a mixed app workload.

Runs in well under a minute with a few jobs::

    python examples/fleet_simulation.py [--jobs N] [--quick]

Builds a :class:`~repro.fleet.FleetScenario` whose devices split across
an idle-dominated app mix (real phones spend most of their time in
background churn, which is exactly what wears flash), simulates every
device through the full eMMC stack, packs the per-device rows into a
columnar fleet store, and prints the fleet rollup -- most importantly
the wear percentiles and the projected days to end of life across the
population.  The same scenario produces byte-identical stores for any
``--jobs`` value.

The request count is sized to the small development configs: their
block pools are tiny, so the hottest devices run close to capacity --
that is what makes the wear tail visible in a run this short.
"""

import argparse
import tempfile
from pathlib import Path

from repro.fleet import FleetScenario, fleet_report, open_fleet_store, run_fleet


def build_scenario(devices: int, requests: int) -> FleetScenario:
    return FleetScenario(
        devices=devices,
        name="mixed-population",
        seed=7,
        requests_per_device=requests,
        apps={
            "Idle": 3.0,
            "Twitter": 2.0,
            "Messaging": 1.5,
            "Music": 1.0,
        },
        configs={"small-4PS": 1.0, "small-HPS": 1.0},
        rate_factor_range=(0.5, 2.0),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--devices", type=int, default=500)
    parser.add_argument("--requests", type=int, default=800)
    parser.add_argument("--jobs", "-j", type=int, default=1)
    parser.add_argument(
        "--out", type=Path, default=None,
        help="fleet store directory (default: a temporary directory)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink the fleet for a fast smoke run",
    )
    args = parser.parse_args()
    if args.quick:
        args.devices, args.requests = 40, 25

    scenario = build_scenario(args.devices, args.requests)
    print(f"Simulating {scenario.devices} devices ({args.jobs} jobs) ...")
    print(f"  {scenario.describe()}")

    with tempfile.TemporaryDirectory() as tmp:
        out = args.out if args.out is not None else Path(tmp) / "fleet"
        result = run_fleet(scenario, out, jobs=args.jobs, overwrite=True)
        print(
            f"  simulated {result.devices} devices in {result.wall_s:.1f} s "
            f"across {result.shards} shards"
        )

        store = open_fleet_store(out)
        # p5 surfaces the worst-worn devices: days-to-EOL sorts the
        # heavily worn (short-lived) tail to the low percentiles.
        report = fleet_report(store, percentiles=(5.0, 50.0, 90.0, 99.0))
        print()
        print(report.render())
        print()
        wear = report.percentiles["max erase count"]
        print(
            "Wear percentiles across the fleet: "
            f"p50={wear['p50']:.0f}, p90={wear['p90']:.0f}, "
            f"p99={wear['p99']:.0f} erase cycles on the hottest block; "
            "the worst 5% of devices reach end of life in "
            f"{report.eol_days['p5']:.0f} days at this rate."
        )
        if args.out is not None:
            print(f"Fleet store kept at {out}")


if __name__ == "__main__":
    main()
